// Load-balance metrics: the quantities the paper reports in Table I
// (Δ(n), δ(n)), Figure 1 (per-partition edges / destinations / sources)
// and Table IV (active-edge distribution over partitions).
#pragma once

#include <vector>

#include "framework/vertex_subset.hpp"
#include "graph/graph.hpp"
#include "order/partition.hpp"
#include "support/stats.hpp"

namespace vebo::metrics {

/// Per-partition structural counts under a destination partitioning.
struct PartitionProfile {
  std::vector<EdgeId> edges;         ///< in-edges per partition
  std::vector<VertexId> vertices;    ///< vertices per partition
  std::vector<VertexId> dests;       ///< destinations with >=1 in-edge
  std::vector<VertexId> sources;     ///< distinct sources per partition

  /// Δ: max-min of edges.
  EdgeId edge_imbalance() const;
  /// δ: max-min of vertices.
  VertexId vertex_imbalance() const;

  Summary edge_summary() const;
  Summary vertex_summary() const;
};

PartitionProfile profile_partitions(const Graph& g,
                                    const order::Partitioning& part);

/// Distribution of *active* edges over partitions for a given frontier:
/// an edge (u, v) is active when u is in the frontier; it is charged to
/// the partition owning v (Table IV).
std::vector<EdgeId> active_edges_per_partition(
    const Graph& g, const order::Partitioning& part,
    const VertexSubset& frontier);

/// Distribution of active destinations (>= 1 active in-edge).
std::vector<VertexId> active_destinations_per_partition(
    const Graph& g, const order::Partitioning& part,
    const VertexSubset& frontier);

}  // namespace vebo::metrics
