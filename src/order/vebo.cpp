#include "order/vebo.hpp"

#include <algorithm>

#include "graph/degree.hpp"
#include "support/error.hpp"
#include "support/minheap.hpp"

namespace vebo::order {

EdgeId VeboResult::edge_imbalance() const {
  if (part_edges.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(part_edges.begin(), part_edges.end());
  return *hi - *lo;
}

VertexId VeboResult::vertex_imbalance() const {
  if (part_vertices.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(part_vertices.begin(), part_vertices.end());
  return *hi - *lo;
}

VeboResult vebo_from_degrees(const std::vector<EdgeId>& in_degree,
                             VertexId P, const VeboOptions& opts) {
  VEBO_CHECK(P >= 1, "vebo: P must be >= 1");
  const VertexId n = static_cast<VertexId>(in_degree.size());
  VEBO_CHECK(n > 0, "vebo: empty graph");

  // Line 4: vertices sorted by decreasing in-degree. The counting sort is
  // stable on vertex id, so same-degree vertices appear in ascending
  // original-id order — the property the blocked variant relies on.
  const std::vector<VertexId> sorted = vertices_by_decreasing_degree(in_degree);

  // m = number of vertices with non-zero degree; they form the prefix of
  // `sorted`.
  VertexId m = n;
  while (m > 0 && in_degree[sorted[m - 1]] == 0) --m;

  std::vector<VertexId> assign(n, 0);  // a[v]
  std::vector<EdgeId> w(P, 0);         // edge count per partition
  std::vector<VertexId> u(P, 0);       // vertex count per partition

  // Phase 1: non-zero-degree vertices by decreasing degree onto the
  // partition with minimum edge weight (ties -> lowest partition id).
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId t = 0; t < m; ++t) {
      const VertexId v = sorted[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, in_degree[v]);
      w[p] += in_degree[v];
      ++u[p];
    }
  }

  // Phase 2: zero-degree vertices onto the partition with minimum vertex
  // count.
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId p = 0; p < P; ++p) heap.update(p, u[p]);
    for (VertexId t = m; t < n; ++t) {
      const VertexId v = sorted[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, 1);
      ++u[p];
    }
  }

  if (opts.blocked) {
    // Locality-preserving adjustment: within each run of equal degree in
    // the sorted order, the multiset of assigned partitions is kept but
    // handed out in ascending partition order. Because the sort is stable,
    // the run's vertices are in ascending original-id order, so blocks of
    // consecutive original ids land on the same partition.
    VertexId run_begin = 0;
    std::vector<VertexId> labels;
    while (run_begin < n) {
      VertexId run_end = run_begin + 1;
      const EdgeId d = in_degree[sorted[run_begin]];
      while (run_end < n && in_degree[sorted[run_end]] == d) ++run_end;
      labels.clear();
      for (VertexId t = run_begin; t < run_end; ++t)
        labels.push_back(assign[sorted[t]]);
      std::sort(labels.begin(), labels.end());
      for (VertexId t = run_begin; t < run_end; ++t)
        assign[sorted[t]] = labels[t - run_begin];
      run_begin = run_end;
    }
  }

  // Phase 3: new sequence numbers; partition p occupies
  // [sum u[0..p-1], sum u[0..p]). Scanning `sorted` in processing order
  // gives decreasing degree within each partition.
  VeboResult res;
  res.part_vertices = u;
  res.part_edges = w;
  res.partitioning = partition_from_counts(u);
  res.perm.assign(n, kInvalidVertex);
  std::vector<VertexId> cursor(P);
  for (VertexId p = 0; p < P; ++p) cursor[p] = res.partitioning.begin(p);
  for (VertexId t = 0; t < n; ++t) {
    const VertexId v = sorted[t];
    res.perm[v] = cursor[assign[v]]++;
  }
  return res;
}

VeboResult vebo(const Graph& g, VertexId P, const VeboOptions& opts) {
  return vebo_from_degrees(in_degrees(g), P, opts);
}

Graph vebo_reorder(const Graph& g, VertexId P, const VeboOptions& opts) {
  return permute(g, vebo(g, P, opts).perm);
}

std::vector<PlacementStep> vebo_placement_trace(
    const std::vector<EdgeId>& in_degree, VertexId P) {
  VEBO_CHECK(P >= 1, "vebo_placement_trace: P must be >= 1");
  const std::vector<VertexId> sorted =
      vertices_by_decreasing_degree(in_degree);
  std::vector<EdgeId> w(P, 0);
  IndexedMinHeap<4> heap(P);
  std::vector<PlacementStep> trace;
  trace.reserve(sorted.size());
  for (VertexId v : sorted) {
    const EdgeId d = in_degree[v];
    if (d == 0) break;  // phase 1 covers non-zero degrees only
    const auto p = heap.top();
    heap.increase(p, d);
    w[p] += d;
    const auto [lo, hi] = std::minmax_element(w.begin(), w.end());
    trace.push_back({d, *hi - *lo, *hi});
  }
  return trace;
}

}  // namespace vebo::order
