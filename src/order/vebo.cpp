#include "order/vebo.hpp"

#include <algorithm>

#include "graph/degree.hpp"
#include "support/error.hpp"
#include "support/minheap.hpp"

namespace vebo::order {

EdgeId VeboResult::edge_imbalance() const {
  if (part_edges.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(part_edges.begin(), part_edges.end());
  return *hi - *lo;
}

VertexId VeboResult::vertex_imbalance() const {
  if (part_vertices.empty()) return 0;
  const auto [lo, hi] =
      std::minmax_element(part_vertices.begin(), part_vertices.end());
  return *hi - *lo;
}

VeboResult vebo_from_degrees(const std::vector<EdgeId>& in_degree,
                             VertexId P, const VeboOptions& opts) {
  VEBO_CHECK(P >= 1, "vebo: P must be >= 1");
  const VertexId n = static_cast<VertexId>(in_degree.size());
  VEBO_CHECK(n > 0, "vebo: empty graph");

  // Line 4: vertices sorted by decreasing in-degree. The counting sort is
  // stable on vertex id, so same-degree vertices appear in ascending
  // original-id order — the property the blocked variant relies on.
  const std::vector<VertexId> sorted = vertices_by_decreasing_degree(in_degree);

  // m = number of vertices with non-zero degree; they form the prefix of
  // `sorted`.
  VertexId m = n;
  while (m > 0 && in_degree[sorted[m - 1]] == 0) --m;

  std::vector<VertexId> assign(n, 0);  // a[v]
  std::vector<EdgeId> w(P, 0);         // edge count per partition
  std::vector<VertexId> u(P, 0);       // vertex count per partition

  // Phase 1: non-zero-degree vertices by decreasing degree onto the
  // partition with minimum edge weight (ties -> lowest partition id).
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId t = 0; t < m; ++t) {
      const VertexId v = sorted[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, in_degree[v]);
      w[p] += in_degree[v];
      ++u[p];
    }
  }

  // Phase 2: zero-degree vertices onto the partition with minimum vertex
  // count.
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId p = 0; p < P; ++p) heap.update(p, u[p]);
    for (VertexId t = m; t < n; ++t) {
      const VertexId v = sorted[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, 1);
      ++u[p];
    }
  }

  if (opts.blocked) {
    // Locality-preserving adjustment: within each run of equal degree in
    // the sorted order, the multiset of assigned partitions is kept but
    // handed out in ascending partition order. Because the sort is stable,
    // the run's vertices are in ascending original-id order, so blocks of
    // consecutive original ids land on the same partition.
    VertexId run_begin = 0;
    std::vector<VertexId> labels;
    while (run_begin < n) {
      VertexId run_end = run_begin + 1;
      const EdgeId d = in_degree[sorted[run_begin]];
      while (run_end < n && in_degree[sorted[run_end]] == d) ++run_end;
      labels.clear();
      for (VertexId t = run_begin; t < run_end; ++t)
        labels.push_back(assign[sorted[t]]);
      std::sort(labels.begin(), labels.end());
      for (VertexId t = run_begin; t < run_end; ++t)
        assign[sorted[t]] = labels[t - run_begin];
      run_begin = run_end;
    }
  }

  // Phase 3: new sequence numbers; partition p occupies
  // [sum u[0..p-1], sum u[0..p]). Scanning `sorted` in processing order
  // gives decreasing degree within each partition.
  VeboResult res;
  res.part_vertices = u;
  res.part_edges = w;
  res.partitioning = partition_from_counts(u);
  res.perm.assign(n, kInvalidVertex);
  std::vector<VertexId> cursor(P);
  for (VertexId p = 0; p < P; ++p) cursor[p] = res.partitioning.begin(p);
  for (VertexId t = 0; t < n; ++t) {
    const VertexId v = sorted[t];
    res.perm[v] = cursor[assign[v]]++;
  }
  return res;
}

VeboResult vebo(const Graph& g, VertexId P, const VeboOptions& opts) {
  return vebo_from_degrees(in_degrees(g), P, opts);
}

Graph vebo_reorder(const Graph& g, VertexId P, const VeboOptions& opts) {
  return permute(g, vebo(g, P, opts).perm);
}

VeboResult vebo_refine(const std::vector<EdgeId>& old_in_degree,
                       const std::vector<EdgeId>& in_degree,
                       const VeboResult& prev,
                       std::span<const VertexId> dirty) {
  const VertexId old_n = static_cast<VertexId>(prev.perm.size());
  const VertexId n = static_cast<VertexId>(in_degree.size());
  const VertexId P = prev.num_partitions();
  VEBO_CHECK(P >= 1, "vebo_refine: previous result has no partitions");
  VEBO_CHECK(old_in_degree.size() == prev.perm.size(),
             "vebo_refine: old degree array size mismatch");
  VEBO_CHECK(n >= old_n, "vebo_refine: vertex set shrank");

  // Current partition of every old vertex, derived from the previous
  // permutation (partitions are contiguous id ranges in the new space).
  std::vector<VertexId> assign(n, kInvalidVertex);
  for (VertexId v = 0; v < old_n; ++v)
    assign[v] = prev.partitioning.owner(prev.perm[v]);

  // Dirty set = caller's list (deduped) plus all new vertices.
  std::vector<bool> is_dirty(n, false);
  std::vector<VertexId> work;
  work.reserve(dirty.size() + (n - old_n));
  for (VertexId v : dirty) {
    VEBO_CHECK(v < n, "vebo_refine: dirty vertex out of range");
    if (!is_dirty[v]) {
      is_dirty[v] = true;
      work.push_back(v);
    }
  }
  for (VertexId v = old_n; v < n; ++v)
    if (!is_dirty[v]) {
      is_dirty[v] = true;
      work.push_back(v);
    }

  // Remove dirty old vertices from their partitions at their *old* weight.
  std::vector<EdgeId> w = prev.part_edges;
  std::vector<VertexId> u = prev.part_vertices;
  for (VertexId v : work)
    if (v < old_n) {
      w[assign[v]] -= old_in_degree[v];
      --u[assign[v]];
    }

  // Re-place in decreasing current degree (ties: ascending id, matching
  // the stability of the full run's counting sort).
  std::sort(work.begin(), work.end(), [&](VertexId a, VertexId b) {
    if (in_degree[a] != in_degree[b]) return in_degree[a] > in_degree[b];
    return a < b;
  });
  std::size_t nz = work.size();
  while (nz > 0 && in_degree[work[nz - 1]] == 0) --nz;
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId p = 0; p < P; ++p) heap.update(p, w[p]);
    for (std::size_t t = 0; t < nz; ++t) {
      const VertexId v = work[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, in_degree[v]);
      w[p] += in_degree[v];
      ++u[p];
    }
  }
  {
    IndexedMinHeap<4> heap(P);
    for (VertexId p = 0; p < P; ++p) heap.update(p, u[p]);
    for (std::size_t t = nz; t < work.size(); ++t) {
      const VertexId v = work[t];
      const auto p = heap.top();
      assign[v] = static_cast<VertexId>(p);
      heap.increase(p, 1);
      ++u[p];
    }
  }

  // Vertex-count repair: the edge-weight placement above can leave
  // partitions short on vertices (full VEBO equalizes vertex counts with
  // its zero-degree phase over the whole graph). Shuffle zero-degree
  // vertices — free with respect to edge balance — from overfull to
  // underfull partitions until δ <= 1 or no movable vertex remains; moved
  // vertices join the re-placed set for renumbering.
  {
    std::vector<std::vector<VertexId>> zeros(P);
    for (VertexId v = 0; v < n; ++v)
      if (in_degree[v] == 0) zeros[assign[v]].push_back(v);
    while (true) {
      VertexId pmin = 0, pdonor = P;
      for (VertexId p = 1; p < P; ++p)
        if (u[p] < u[pmin]) pmin = p;
      for (VertexId p = 0; p < P; ++p)
        if (!zeros[p].empty() && u[p] > u[pmin] + 1 &&
            (pdonor == P || u[p] > u[pdonor]))
          pdonor = p;
      if (pdonor == P) break;
      const VertexId v = zeros[pdonor].back();
      zeros[pdonor].pop_back();
      assign[v] = pmin;
      zeros[pmin].push_back(v);
      --u[pdonor];
      ++u[pmin];
      if (!is_dirty[v]) {
        is_dirty[v] = true;
        work.push_back(v);
      }
    }
  }

  // Renumber: non-dirty vertices keep their previous relative order within
  // each partition; re-placed vertices follow in placement order.
  VeboResult res;
  res.part_vertices = u;
  res.part_edges = w;
  res.partitioning = partition_from_counts(u);
  res.perm.assign(n, kInvalidVertex);
  std::vector<VertexId> cursor(P);
  for (VertexId p = 0; p < P; ++p) cursor[p] = res.partitioning.begin(p);
  {
    // Old vertices in previous position order.
    std::vector<VertexId> at_pos(old_n, kInvalidVertex);
    for (VertexId v = 0; v < old_n; ++v) at_pos[prev.perm[v]] = v;
    for (VertexId pos = 0; pos < old_n; ++pos) {
      const VertexId v = at_pos[pos];
      if (v != kInvalidVertex && !is_dirty[v])
        res.perm[v] = cursor[assign[v]]++;
    }
  }
  for (VertexId v : work) res.perm[v] = cursor[assign[v]]++;
  for (VertexId p = 0; p < P; ++p)
    VEBO_ASSERT(cursor[p] == res.partitioning.end(p));
  return res;
}

std::vector<PlacementStep> vebo_placement_trace(
    const std::vector<EdgeId>& in_degree, VertexId P) {
  VEBO_CHECK(P >= 1, "vebo_placement_trace: P must be >= 1");
  const std::vector<VertexId> sorted =
      vertices_by_decreasing_degree(in_degree);
  std::vector<EdgeId> w(P, 0);
  IndexedMinHeap<4> heap(P);
  std::vector<PlacementStep> trace;
  trace.reserve(sorted.size());
  for (VertexId v : sorted) {
    const EdgeId d = in_degree[v];
    if (d == 0) break;  // phase 1 covers non-zero degrees only
    const auto p = heap.top();
    heap.increase(p, d);
    w[p] += d;
    const auto [lo, hi] = std::minmax_element(w.begin(), w.end());
    trace.push_back({d, *hi - *lo, *hi});
  }
  return trace;
}

}  // namespace vebo::order
