#include "order/sort_order.hpp"

#include <deque>

#include "graph/degree.hpp"
#include "support/prng.hpp"

namespace vebo::order {

Permutation original(const Graph& g) {
  return identity_permutation(g.num_vertices());
}

Permutation random_order(VertexId n, std::uint64_t seed) {
  Permutation perm = identity_permutation(n);
  Xoshiro256 rng(seed);
  for (VertexId v = n - 1; v > 0; --v) {
    const VertexId j = static_cast<VertexId>(rng.next_below(v + 1));
    std::swap(perm[v], perm[j]);
  }
  return perm;
}

Permutation degree_sort_high_to_low(const Graph& g) {
  const auto sorted = vertices_by_decreasing_in_degree(g);
  Permutation perm(g.num_vertices());
  for (VertexId i = 0; i < g.num_vertices(); ++i) perm[sorted[i]] = i;
  return perm;
}

Permutation bfs_order(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  Permutation perm(n, kInvalidVertex);
  if (n == 0) return perm;
  VertexId next_id = 0;
  std::vector<bool> queued(n, false);
  std::deque<VertexId> q;
  auto run = [&](VertexId root) {
    if (queued[root]) return;
    queued[root] = true;
    q.push_back(root);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop_front();
      perm[v] = next_id++;
      for (VertexId u : g.out_neighbors(v))
        if (!queued[u]) {
          queued[u] = true;
          q.push_back(u);
        }
    }
  };
  run(source % n);
  for (VertexId v = 0; v < n; ++v) run(v);
  return perm;
}

Permutation dfs_order(const Graph& g, VertexId source) {
  const VertexId n = g.num_vertices();
  Permutation perm(n, kInvalidVertex);
  if (n == 0) return perm;
  VertexId next_id = 0;
  std::vector<bool> pushed(n, false);
  std::vector<VertexId> stack;
  auto run = [&](VertexId root) {
    if (pushed[root]) return;
    pushed[root] = true;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      perm[v] = next_id++;
      auto nb = g.out_neighbors(v);
      for (auto it = nb.rbegin(); it != nb.rend(); ++it)
        if (!pushed[*it]) {
          pushed[*it] = true;
          stack.push_back(*it);
        }
    }
  };
  run(source % n);
  for (VertexId v = 0; v < n; ++v) run(v);
  return perm;
}

}  // namespace vebo::order
