// SlashBurn ordering (Lim, Kang, Faloutsos, TKDE'14), cited in the
// paper's related work: repeatedly remove the k highest-degree hubs
// (placing them at the front of the order), then order the resulting
// connected components by size (placing the small-component vertices at
// the back), and recurse on the giant component. Produces a
// hub-and-spoke arrangement that concentrates the non-zero structure of
// the adjacency matrix.
#pragma once

#include "graph/graph.hpp"
#include "graph/permute.hpp"

namespace vebo::order {

struct SlashBurnOptions {
  /// Number of hubs removed per iteration as a fraction of n (the
  /// original paper uses 0.5%-2%).
  double hub_fraction = 0.01;
  /// Stop recursing once the giant component is this small.
  VertexId min_component = 64;
};

/// Returns the SlashBurn permutation: new id = perm[old id].
Permutation slashburn(const Graph& g, const SlashBurnOptions& opts = {});

}  // namespace vebo::order
