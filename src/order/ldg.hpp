// LDG streaming partitioner (Stanton & Kliot, KDD'12), cited in the
// paper's related work: vertices arrive in a stream and each is assigned
// to the partition maximizing |neighbors already there| weighted by a
// linear penalty on the partition's fill. Unlike VEBO/Algorithm 1 the
// result is a general (non-contiguous) assignment; `ldg_order` converts
// it into a relabelling so partitions become contiguous chunks, making it
// directly comparable to the other orderings.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/permute.hpp"
#include "order/partition.hpp"

namespace vebo::order {

struct LdgOptions {
  /// Capacity slack: each partition holds at most slack * n/P vertices.
  double slack = 1.1;
};

struct LdgResult {
  std::vector<VertexId> assignment;  ///< vertex -> partition
  Permutation perm;                  ///< relabelling (partition-contiguous)
  Partitioning partitioning;         ///< chunks under the new labels
  /// Fraction of edges whose endpoints land in different partitions
  /// (LDG's optimization target; VEBO deliberately ignores it).
  double edge_cut_fraction = 0.0;
};

LdgResult ldg(const Graph& g, VertexId P, const LdgOptions& opts = {});

}  // namespace vebo::order
