#include "order/hilbert.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo::order {

// Classic bit-twiddling conversion (Wikipedia / Warren): iterate from the
// largest sub-square down, rotating the frame as dictated by the quadrant.
std::uint64_t hilbert_index(std::uint32_t x, std::uint32_t y, int k) {
  VEBO_ASSERT(k > 0 && k <= 32);
  std::uint64_t rx, ry, d = 0;
  for (std::uint64_t s = std::uint64_t{1} << (k - 1); s > 0; s >>= 1) {
    rx = (x & s) ? 1 : 0;
    ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate.
    if (ry == 0) {
      if (rx == 1) {
        x = static_cast<std::uint32_t>(s - 1 - x);
        y = static_cast<std::uint32_t>(s - 1 - y);
      }
      std::swap(x, y);
    }
  }
  return d;
}

void hilbert_point(std::uint64_t d, int k, std::uint32_t& x,
                   std::uint32_t& y) {
  VEBO_ASSERT(k > 0 && k <= 32);
  std::uint64_t rx, ry, t = d;
  std::uint64_t xx = 0, yy = 0;
  for (std::uint64_t s = 1; s < (std::uint64_t{1} << k); s <<= 1) {
    rx = 1 & (t / 2);
    ry = 1 & (t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        xx = s - 1 - xx;
        yy = s - 1 - yy;
      }
      std::swap(xx, yy);
    }
    xx += s * rx;
    yy += s * ry;
    t /= 4;
  }
  x = static_cast<std::uint32_t>(xx);
  y = static_cast<std::uint32_t>(yy);
}

int hilbert_order_for(std::uint64_t n) {
  int k = 1;
  while ((std::uint64_t{1} << k) < n) ++k;
  return k;
}

void sort_edges_hilbert(EdgeList& el) {
  const int k = hilbert_order_for(el.num_vertices());
  auto edges = el.mutable_edges();
  std::vector<std::pair<std::uint64_t, Edge>> keyed(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    keyed[i] = {hilbert_index(edges[i].src, edges[i].dst, k), edges[i]};
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i] = keyed[i].second;
}

void sort_edges_csr(EdgeList& el) { el.sort_by_source(); }

void sort_edges_csc(EdgeList& el) { el.sort_by_destination(); }

}  // namespace vebo::order
