// Gorder (Wei et al., SIGMOD'16): greedy window-based vertex ordering that
// maximizes a locality score — the temporal-locality baseline of the
// paper's evaluation.
//
// The greedy repeatedly appends the unplaced vertex with the highest score
// against a sliding window of the last `window` placed vertices, where
// score(v) counts (a) direct edges u->v from window vertices u and
// (b) shared in-neighbors ("sibling" relations) with window vertices.
// Priorities are maintained with a lazy max-heap; each window entry/exit
// applies +/-1 deltas along out-edges and 2-hop sibling paths, giving the
// O(sum_deg_out^2) bound quoted in the paper.
#pragma once

#include "graph/graph.hpp"
#include "graph/permute.hpp"

namespace vebo::order {

struct GorderOptions {
  VertexId window = 5;  ///< the paper/implementation default w=5
  /// In-neighbor hubs with degree above this are skipped during sibling
  /// expansion to keep the quadratic term bounded on skewed graphs (the
  /// reference implementation applies the same optimization).
  EdgeId hub_cutoff = 512;
};

/// Returns the Gorder permutation: new id = perm[old id].
Permutation gorder(const Graph& g, const GorderOptions& opts = {});

/// Locality score of a labelling: number of vertex pairs (u, v) that are
/// adjacent or siblings and whose labels differ by at most `window`.
/// Gorder maximizes this (used by tests to confirm improvement).
double gorder_score(const Graph& g, std::span<const VertexId> perm,
                    VertexId window = 5);

}  // namespace vebo::order
