#include "order/rcm.hpp"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "support/error.hpp"

namespace vebo::order {

namespace {

// Undirected adjacency: sorted union of in- and out-neighbors per vertex.
std::vector<std::vector<VertexId>> undirected_adjacency(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    auto out = g.out_neighbors(v);
    auto in = g.in_neighbors(v);
    auto& row = adj[v];
    row.reserve(out.size() + in.size());
    row.insert(row.end(), out.begin(), out.end());
    row.insert(row.end(), in.begin(), in.end());
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    std::erase(row, v);  // drop self-loops
  }
  return adj;
}

// BFS from `root` over `adj`, returns (farthest vertex, eccentricity).
// Only unvisited-in-`component` vertices are explored; `scratch` is a
// level array reused across calls.
std::pair<VertexId, VertexId> bfs_farthest(
    const std::vector<std::vector<VertexId>>& adj, VertexId root,
    std::vector<VertexId>& level) {
  std::fill(level.begin(), level.end(), kInvalidVertex);
  std::queue<VertexId> q;
  q.push(root);
  level[root] = 0;
  VertexId far = root, ecc = 0;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : adj[v]) {
      if (level[u] != kInvalidVertex) continue;
      level[u] = level[v] + 1;
      if (level[u] > ecc || (level[u] == ecc && adj[u].size() < adj[far].size())) {
        ecc = level[u];
        far = u;
      }
      q.push(u);
    }
  }
  return {far, ecc};
}

// Pseudo-peripheral vertex: iterate "go to the farthest vertex" until the
// eccentricity stops growing (George–Liu heuristic).
VertexId pseudo_peripheral(const std::vector<std::vector<VertexId>>& adj,
                           VertexId start, std::vector<VertexId>& level) {
  VertexId v = start;
  VertexId ecc = 0;
  for (int iter = 0; iter < 8; ++iter) {
    auto [far, e] = bfs_farthest(adj, v, level);
    if (e <= ecc) break;
    ecc = e;
    v = far;
  }
  return v;
}

}  // namespace

Permutation rcm(const Graph& g) {
  const VertexId n = g.num_vertices();
  const auto adj = undirected_adjacency(g);

  std::vector<bool> visited(n, false);
  std::vector<VertexId> cm_order;  // position -> old id (Cuthill–McKee)
  cm_order.reserve(n);
  std::vector<VertexId> level(n);

  // Vertices by increasing degree: component roots prefer low degree.
  std::vector<VertexId> by_degree(n);
  for (VertexId v = 0; v < n; ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](VertexId a, VertexId b) {
              if (adj[a].size() != adj[b].size())
                return adj[a].size() < adj[b].size();
              return a < b;
            });

  std::vector<VertexId> frontier;
  for (VertexId seed : by_degree) {
    if (visited[seed]) continue;
    const VertexId root = pseudo_peripheral(adj, seed, level);
    // Standard CM: BFS from root, visiting each vertex's unvisited
    // neighbors in increasing degree order.
    std::queue<VertexId> q;
    q.push(root);
    visited[root] = true;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      cm_order.push_back(v);
      frontier.clear();
      for (VertexId u : adj[v])
        if (!visited[u]) {
          visited[u] = true;
          frontier.push_back(u);
        }
      std::sort(frontier.begin(), frontier.end(),
                [&](VertexId a, VertexId b) {
                  if (adj[a].size() != adj[b].size())
                    return adj[a].size() < adj[b].size();
                  return a < b;
                });
      for (VertexId u : frontier) q.push(u);
    }
  }
  VEBO_ASSERT(cm_order.size() == n);

  // Reverse: position i in CM becomes position n-1-i.
  Permutation perm(n);
  for (VertexId i = 0; i < n; ++i)
    perm[cm_order[i]] = n - 1 - i;
  return perm;
}

EdgeId bandwidth(const Graph& g, std::span<const VertexId> perm) {
  EdgeId bw = 0;
  for (const Edge& e : g.coo().edges()) {
    const auto a = static_cast<std::int64_t>(perm[e.src]);
    const auto b = static_cast<std::int64_t>(perm[e.dst]);
    bw = std::max<EdgeId>(bw, static_cast<EdgeId>(std::llabs(a - b)));
  }
  return bw;
}

}  // namespace vebo::order
