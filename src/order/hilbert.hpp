// Hilbert space-filling curve edge ordering (Section V-G of the paper).
//
// Treating an edge (src, dst) as a point in the adjacency matrix, sorting
// edges by their position along a Hilbert curve improves temporal locality
// of COO traversal. The paper compares this against CSR (source-major)
// edge order and finds CSR order superior once VEBO has equalized the
// degree mix per partition.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace vebo::order {

/// Distance along the Hilbert curve of order 2^k covering [0,2^k)^2.
std::uint64_t hilbert_index(std::uint32_t x, std::uint32_t y, int k);

/// Inverse of hilbert_index.
void hilbert_point(std::uint64_t d, int k, std::uint32_t& x,
                   std::uint32_t& y);

/// Smallest k such that 2^k covers ids [0, n).
int hilbert_order_for(std::uint64_t n);

/// Sorts edges in Hilbert order of (src, dst).
void sort_edges_hilbert(EdgeList& el);

/// Sorts edges in CSR order (source-major, then destination).
void sort_edges_csr(EdgeList& el);

/// Sorts edges in CSC order (destination-major, then source).
void sort_edges_csc(EdgeList& el);

}  // namespace vebo::order
