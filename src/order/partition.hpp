// Algorithm 1 of the paper: locality-preserving edge-balanced partitioning
// of the destination vertices. Each partition is a contiguous chunk of
// vertex ids owning all in-edges of its vertices. This is the partitioner
// used by Polymer/GraphGrind-style systems; VEBO reorders vertices so that
// this partitioner produces optimally balanced partitions.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace vebo::order {

/// A partitioning of the destination vertex set into contiguous chunks.
struct Partitioning {
  /// boundaries.size() == P+1; partition p owns destination vertices
  /// [boundaries[p], boundaries[p+1]).
  std::vector<VertexId> boundaries;

  VertexId num_partitions() const {
    return boundaries.empty() ? 0
                              : static_cast<VertexId>(boundaries.size() - 1);
  }
  VertexId begin(VertexId p) const { return boundaries[p]; }
  VertexId end(VertexId p) const { return boundaries[p + 1]; }
  VertexId vertices_in(VertexId p) const { return end(p) - begin(p); }

  /// Partition that owns destination v (binary search).
  VertexId owner(VertexId v) const;
};

/// Algorithm 1: walk vertices in id order, close the current partition
/// once it has accumulated >= |E|/P in-edges.
Partitioning partition_by_destination(const Graph& g, VertexId P);

/// Same but from an explicit in-degree array (used before the graph is
/// materialized).
Partitioning partition_by_degrees(const std::vector<EdgeId>& in_degree,
                                  VertexId P);

/// Builds a partitioning from explicit per-partition vertex counts (used
/// by VEBO, whose phase 3 determines the chunk sizes directly).
Partitioning partition_from_counts(const std::vector<VertexId>& counts);

/// Per-partition in-edge counts under a partitioning.
std::vector<EdgeId> edges_per_partition(const Graph& g,
                                        const Partitioning& part);

/// Per-partition count of destination vertices with at least one in-edge
/// ("unique destinations" in the paper's Figure 1).
std::vector<VertexId> destinations_per_partition(const Graph& g,
                                                 const Partitioning& part);

/// Per-partition count of distinct source vertices feeding the partition.
std::vector<VertexId> sources_per_partition(const Graph& g,
                                            const Partitioning& part);

}  // namespace vebo::order
