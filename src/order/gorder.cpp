#include "order/gorder.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "support/error.hpp"

namespace vebo::order {

namespace {

/// Lazy max-heap over (score, vertex): scores live in an array; heap
/// entries carry a stamp and stale entries are discarded on pop.
class LazyMaxHeap {
 public:
  explicit LazyMaxHeap(std::size_t n) : score_(n, 0), stamp_(n, 0) {}

  void push(VertexId v) { entries_.push_back({score_[v], stamp_[v], v}); heapify_up(); }

  void adjust(VertexId v, std::int64_t delta) {
    score_[v] += delta;
    ++stamp_[v];
    entries_.push_back({score_[v], stamp_[v], v});
    heapify_up();
  }

  std::int64_t score(VertexId v) const { return score_[v]; }

  /// Pops the valid entry with the max score among vertices where
  /// `alive(v)` is true. Returns kInvalidVertex when empty.
  template <typename Alive>
  VertexId pop_max(Alive&& alive) {
    while (!entries_.empty()) {
      const Entry top = entries_.front();
      std::pop_heap(entries_.begin(), entries_.end(), less_);
      entries_.pop_back();
      if (top.stamp == stamp_[top.v] && alive(top.v)) return top.v;
    }
    return kInvalidVertex;
  }

 private:
  struct Entry {
    std::int64_t score;
    std::uint32_t stamp;
    VertexId v;
  };
  static bool less(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.v > b.v;  // prefer lower id on ties
  }
  static constexpr auto less_ = &LazyMaxHeap::less;

  void heapify_up() { std::push_heap(entries_.begin(), entries_.end(), less_); }

  std::vector<std::int64_t> score_;
  std::vector<std::uint32_t> stamp_;
  std::vector<Entry> entries_;
};

}  // namespace

Permutation gorder(const Graph& g, const GorderOptions& opts) {
  const VertexId n = g.num_vertices();
  VEBO_CHECK(opts.window >= 1, "gorder: window must be >= 1");

  std::vector<bool> placed(n, false);
  std::vector<VertexId> sequence;  // position -> old id
  sequence.reserve(n);
  LazyMaxHeap heap(n);
  for (VertexId v = 0; v < n; ++v) heap.push(v);

  std::deque<VertexId> window;

  // Applies +/-1 score deltas for vertex u entering (sign=+1) or leaving
  // (sign=-1) the window: out-neighbors of u gain adjacency score; vertices
  // sharing an in-neighbor with... — in Gorder the sibling term counts, for
  // candidate v, window vertices u such that some w has edges w->u and
  // w->v. We add it by expanding u's in-neighbors' out-edges.
  auto apply = [&](VertexId u, std::int64_t sign) {
    for (VertexId v : g.out_neighbors(u))
      if (!placed[v]) heap.adjust(v, sign);
    // Sibling expansion is quadratic in degree; skip hubs on either side
    // (the reference implementation bounds this with its unit heap).
    if (g.in_degree(u) > opts.hub_cutoff) return;
    for (VertexId w : g.in_neighbors(u)) {
      if (g.out_degree(w) > opts.hub_cutoff) continue;  // hub skip
      for (VertexId v : g.out_neighbors(w))
        if (!placed[v] && v != u) heap.adjust(v, sign);
    }
  };

  for (VertexId step = 0; step < n; ++step) {
    const VertexId v = heap.pop_max([&](VertexId x) { return !placed[x]; });
    VEBO_ASSERT(v != kInvalidVertex);
    placed[v] = true;
    sequence.push_back(v);
    window.push_back(v);
    apply(v, +1);
    if (window.size() > opts.window) {
      const VertexId out = window.front();
      window.pop_front();
      apply(out, -1);
    }
  }

  Permutation perm(n);
  for (VertexId i = 0; i < n; ++i) perm[sequence[i]] = i;
  return perm;
}

double gorder_score(const Graph& g, std::span<const VertexId> perm,
                    VertexId window) {
  const VertexId n = g.num_vertices();
  double score = 0.0;
  // Adjacency term.
  for (const Edge& e : g.coo().edges()) {
    const auto a = static_cast<std::int64_t>(perm[e.src]);
    const auto b = static_cast<std::int64_t>(perm[e.dst]);
    if (std::abs(a - b) <= static_cast<std::int64_t>(window)) score += 1.0;
  }
  // Sibling term: pairs of out-neighbors of a common source. Quadratic in
  // the out-degree, so only used in tests on small graphs.
  for (VertexId w = 0; w < n; ++w) {
    auto nb = g.out_neighbors(w);
    for (std::size_t i = 0; i < nb.size(); ++i)
      for (std::size_t j = i + 1; j < nb.size(); ++j) {
        const auto a = static_cast<std::int64_t>(perm[nb[i]]);
        const auto b = static_cast<std::int64_t>(perm[nb[j]]);
        if (std::abs(a - b) <= static_cast<std::int64_t>(window)) score += 1.0;
      }
  }
  return score;
}

}  // namespace vebo::order
