#include "order/slashburn.hpp"

#include <algorithm>
#include <queue>

#include "support/error.hpp"

namespace vebo::order {

namespace {

/// Undirected degree of v restricted to `alive` vertices.
std::size_t alive_degree(const Graph& g, const std::vector<bool>& alive,
                         VertexId v) {
  std::size_t d = 0;
  for (VertexId u : g.out_neighbors(v))
    if (alive[u] && u != v) ++d;
  for (VertexId u : g.in_neighbors(v))
    if (alive[u] && u != v) ++d;
  return d;
}

/// Connected components of the alive subgraph (undirected view).
/// Returns component id per vertex (kInvalidVertex for dead) and sizes.
std::pair<std::vector<VertexId>, std::vector<VertexId>> components(
    const Graph& g, const std::vector<bool>& alive) {
  std::vector<VertexId> comp(g.num_vertices(), kInvalidVertex);
  std::vector<VertexId> sizes;
  for (VertexId seed = 0; seed < g.num_vertices(); ++seed) {
    if (!alive[seed] || comp[seed] != kInvalidVertex) continue;
    const VertexId id = static_cast<VertexId>(sizes.size());
    VertexId size = 0;
    std::queue<VertexId> q;
    q.push(seed);
    comp[seed] = id;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      ++size;
      auto visit = [&](VertexId u) {
        if (alive[u] && comp[u] == kInvalidVertex) {
          comp[u] = id;
          q.push(u);
        }
      };
      for (VertexId u : g.out_neighbors(v)) visit(u);
      for (VertexId u : g.in_neighbors(v)) visit(u);
    }
    sizes.push_back(size);
  }
  return {std::move(comp), std::move(sizes)};
}

}  // namespace

Permutation slashburn(const Graph& g, const SlashBurnOptions& opts) {
  const VertexId n = g.num_vertices();
  VEBO_CHECK(opts.hub_fraction > 0.0 && opts.hub_fraction <= 0.5,
             "slashburn: hub_fraction out of range");
  const VertexId k = std::max<VertexId>(
      1, static_cast<VertexId>(opts.hub_fraction * n));

  std::vector<bool> alive(n, true);
  std::vector<VertexId> front;  // hubs, in removal order
  std::vector<VertexId> back;   // spokes, appended back-to-front
  front.reserve(n);
  back.reserve(n);

  VertexId remaining = n;
  while (remaining > 0) {
    // 1. Slash: remove the k highest-degree alive vertices.
    std::vector<VertexId> alive_ids;
    alive_ids.reserve(remaining);
    for (VertexId v = 0; v < n; ++v)
      if (alive[v]) alive_ids.push_back(v);
    std::partial_sort(
        alive_ids.begin(),
        alive_ids.begin() + std::min<std::size_t>(k, alive_ids.size()),
        alive_ids.end(), [&](VertexId a, VertexId b) {
          const auto da = alive_degree(g, alive, a);
          const auto db = alive_degree(g, alive, b);
          if (da != db) return da > db;
          return a < b;
        });
    const std::size_t hubs = std::min<std::size_t>(k, alive_ids.size());
    for (std::size_t i = 0; i < hubs; ++i) {
      front.push_back(alive_ids[i]);
      alive[alive_ids[i]] = false;
      --remaining;
    }
    if (remaining == 0) break;

    // 2. Burn: find components; all but the giant go to the back, ordered
    // by increasing size (the original orders spokes by component size).
    auto [comp, sizes] = components(g, alive);
    if (sizes.empty()) break;
    std::size_t giant = 0;
    for (std::size_t c = 1; c < sizes.size(); ++c)
      if (sizes[c] > sizes[giant]) giant = c;

    std::vector<std::size_t> comp_order;
    for (std::size_t c = 0; c < sizes.size(); ++c)
      if (c != giant) comp_order.push_back(c);
    std::sort(comp_order.begin(), comp_order.end(),
              [&](std::size_t a, std::size_t b) {
                if (sizes[a] != sizes[b]) return sizes[a] < sizes[b];
                return a < b;
              });
    // Append non-giant components to `back` (they end up at the tail of
    // the final order, smallest components last).
    for (auto it = comp_order.rbegin(); it != comp_order.rend(); ++it) {
      for (VertexId v = 0; v < n; ++v)
        if (alive[v] && comp[v] == *it) {
          back.push_back(v);
          alive[v] = false;
          --remaining;
        }
    }
    // 3. Recurse on the giant component unless it is small enough.
    if (sizes[giant] <= opts.min_component) {
      for (VertexId v = 0; v < n; ++v)
        if (alive[v]) {
          front.push_back(v);
          alive[v] = false;
          --remaining;
        }
    }
  }

  VEBO_ASSERT(front.size() + back.size() == n);
  Permutation perm(n);
  VertexId pos = 0;
  for (VertexId v : front) perm[v] = pos++;
  for (auto it = back.rbegin(); it != back.rend(); ++it) perm[*it] = pos++;
  return perm;
}

}  // namespace vebo::order
