// VEBO — the paper's Algorithm 2: Vertex- and Edge-Balanced Ordering.
//
// Three phases:
//  1. Place vertices with non-zero in-degree in order of decreasing degree,
//     each onto the partition with the fewest edges so far (min-heap over
//     partition edge weights -> O(n log P) total).
//  2. Place zero-in-degree vertices onto the partition with the fewest
//     vertices, correcting any vertex imbalance left by phase 1.
//  3. Renumber vertices so every partition is a contiguous id range.
//
// The `blocked` variant (Section III-D, last paragraph) keeps runs of
// same-degree vertices with consecutive original ids together to retain
// the input graph's spatial locality; the per-partition vertex and edge
// counts — and hence the balance guarantees — are identical to the exact
// variant.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/permute.hpp"
#include "order/partition.hpp"

namespace vebo::order {

struct VeboOptions {
  /// Locality-preserving block placement (the paper's default for all
  /// experiments).
  bool blocked = true;
};

struct VeboResult {
  Permutation perm;                       ///< new id = perm[old id]
  std::vector<VertexId> part_vertices;    ///< u[p]: vertices per partition
  std::vector<EdgeId> part_edges;         ///< w[p]: in-edges per partition
  Partitioning partitioning;              ///< contiguous chunks in new ids

  VertexId num_partitions() const {
    return static_cast<VertexId>(part_vertices.size());
  }
  /// Δ(n): max - min in-edges over partitions (Theorem 1 bounds this by 1
  /// for Zipf-distributed degrees).
  EdgeId edge_imbalance() const;
  /// δ(n): max - min vertices over partitions (Theorem 2 bounds this by 1).
  VertexId vertex_imbalance() const;
};

/// Runs VEBO from an explicit in-degree array.
VeboResult vebo_from_degrees(const std::vector<EdgeId>& in_degree,
                             VertexId P, const VeboOptions& opts = {});

/// Runs VEBO on a graph's in-degree sequence.
VeboResult vebo(const Graph& g, VertexId P, const VeboOptions& opts = {});

/// Convenience: VEBO-reordered copy of the graph.
Graph vebo_reorder(const Graph& g, VertexId P, const VeboOptions& opts = {});

/// Incremental refinement of a previous VEBO result after degree drift
/// (the streaming subsystem's rebalance step). Only the vertices listed in
/// `dirty` — plus any new vertices beyond `prev.perm.size()` — are
/// re-placed: each is first removed from its partition (using its degree
/// in `old_in_degree`, the sequence `prev` was built from), then placed
/// onto the currently least-loaded partition in decreasing-degree order
/// (zero-degree vertices onto the fewest-vertices partition, mirroring
/// phases 1-2 of Algorithm 2). Placement costs O(|dirty| log(|dirty|·P));
/// the contiguous renumbering is O(n) and keeps every non-dirty vertex in
/// its previous relative order, so partition-interior locality survives.
/// Unlike the full run, degrees within a partition are no longer strictly
/// decreasing — balance bounds are what the refinement maintains.
VeboResult vebo_refine(const std::vector<EdgeId>& old_in_degree,
                       const std::vector<EdgeId>& in_degree,
                       const VeboResult& prev,
                       std::span<const VertexId> dirty);

/// One step of the phase-1 placement trace (used to validate Lemma 1).
struct PlacementStep {
  EdgeId degree;         ///< d(t): degree of the vertex placed
  EdgeId imbalance;      ///< Δ(t+1): edge imbalance after the placement
  EdgeId max_weight;     ///< ω(t+1)
};

/// Replays phase 1 of Algorithm 2 recording Δ(t) and ω(t) after every
/// placement. Lemma 1 asserts: if d(t) <= Δ(t) then Δ(t+1) <= Δ(t) and
/// ω(t+1) = ω(t); otherwise Δ(t+1) <= d(t) and ω(t+1) > ω(t).
std::vector<PlacementStep> vebo_placement_trace(
    const std::vector<EdgeId>& in_degree, VertexId P);

}  // namespace vebo::order
