// Simple orderings used as baselines and controls in the paper:
// identity (original ids), uniformly random permutation (Fig. 5), and
// degree sort high-to-low (the comparison order of Fig. 6).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/permute.hpp"

namespace vebo::order {

/// Original ids.
Permutation original(const Graph& g);

/// Uniformly random permutation (Fisher–Yates, seeded).
Permutation random_order(VertexId n, std::uint64_t seed);

/// New ids assigned in order of decreasing in-degree (ties: ascending
/// original id). The "high-to-low" order of Section V-G.
Permutation degree_sort_high_to_low(const Graph& g);

/// New ids in BFS visit order from `source` (unreached components are
/// appended in id order, each BFS'd). A classic cheap locality order.
Permutation bfs_order(const Graph& g, VertexId source = 0);

/// New ids in iterative DFS preorder; same component handling as
/// bfs_order.
Permutation dfs_order(const Graph& g, VertexId source = 0);

}  // namespace vebo::order
