#include "order/partition.hpp"

#include <algorithm>

#include "support/bitset.hpp"
#include "support/error.hpp"

namespace vebo::order {

VertexId Partitioning::owner(VertexId v) const {
  VEBO_ASSERT(!boundaries.empty() && v < boundaries.back());
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), v);
  return static_cast<VertexId>(it - boundaries.begin() - 1);
}

Partitioning partition_by_degrees(const std::vector<EdgeId>& in_degree,
                                  VertexId P) {
  VEBO_CHECK(P >= 1, "partition: P must be >= 1");
  const VertexId n = static_cast<VertexId>(in_degree.size());
  EdgeId total = 0;
  for (EdgeId d : in_degree) total += d;
  // Average edges per partition; Algorithm 1 line 1. Integer division
  // mirrors the reference implementations.
  const EdgeId avg = std::max<EdgeId>(1, total / P);

  Partitioning part;
  part.boundaries.assign(static_cast<std::size_t>(P) + 1, n);
  part.boundaries[0] = 0;
  VertexId p = 0;
  EdgeId in_part = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (in_part >= avg && p + 1 < P) {
      ++p;
      part.boundaries[p] = v;
      in_part = 0;
    }
    in_part += in_degree[v];
  }
  // Remaining partitions (if the walk exhausted vertices early) are empty
  // chunks pinned at n.
  for (VertexId q = p + 1; q <= P; ++q)
    part.boundaries[q] = std::max(part.boundaries[q], part.boundaries[p]);
  part.boundaries[P] = n;
  // Monotonicity repair for empty tail partitions.
  for (VertexId q = 1; q <= P; ++q)
    part.boundaries[q] = std::max(part.boundaries[q], part.boundaries[q - 1]);
  return part;
}

Partitioning partition_by_destination(const Graph& g, VertexId P) {
  std::vector<EdgeId> deg(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) deg[v] = g.in_degree(v);
  return partition_by_degrees(deg, P);
}

Partitioning partition_from_counts(const std::vector<VertexId>& counts) {
  Partitioning part;
  part.boundaries.resize(counts.size() + 1);
  part.boundaries[0] = 0;
  for (std::size_t p = 0; p < counts.size(); ++p)
    part.boundaries[p + 1] = part.boundaries[p] + counts[p];
  return part;
}

std::vector<EdgeId> edges_per_partition(const Graph& g,
                                        const Partitioning& part) {
  const VertexId P = part.num_partitions();
  std::vector<EdgeId> edges(P, 0);
  for (VertexId p = 0; p < P; ++p)
    for (VertexId v = part.begin(p); v < part.end(p); ++v)
      edges[p] += g.in_degree(v);
  return edges;
}

std::vector<VertexId> destinations_per_partition(const Graph& g,
                                                 const Partitioning& part) {
  const VertexId P = part.num_partitions();
  std::vector<VertexId> dests(P, 0);
  for (VertexId p = 0; p < P; ++p)
    for (VertexId v = part.begin(p); v < part.end(p); ++v)
      if (g.in_degree(v) > 0) ++dests[p];
  return dests;
}

std::vector<VertexId> sources_per_partition(const Graph& g,
                                            const Partitioning& part) {
  const VertexId P = part.num_partitions();
  std::vector<VertexId> sources(P, 0);
  DynamicBitset seen(g.num_vertices());
  for (VertexId p = 0; p < P; ++p) {
    seen.reset();
    VertexId count = 0;
    for (VertexId v = part.begin(p); v < part.end(p); ++v)
      for (VertexId u : g.in_neighbors(v))
        if (!seen.get(u)) {
          seen.set(u);
          ++count;
        }
    sources[p] = count;
  }
  return sources;
}

}  // namespace vebo::order
