#include "order/ldg.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo::order {

LdgResult ldg(const Graph& g, VertexId P, const LdgOptions& opts) {
  const VertexId n = g.num_vertices();
  VEBO_CHECK(P >= 1, "ldg: P must be >= 1");
  VEBO_CHECK(opts.slack >= 1.0, "ldg: slack must be >= 1");
  const double capacity =
      opts.slack * static_cast<double>(n) / static_cast<double>(P);

  LdgResult res;
  res.assignment.assign(n, 0);
  std::vector<VertexId> fill(P, 0);
  std::vector<double> score(P);
  std::vector<bool> placed(n, false);

  // Stream vertices in id order (the streaming model's arrival order).
  for (VertexId v = 0; v < n; ++v) {
    std::fill(score.begin(), score.end(), 0.0);
    // Count already-placed neighbors per partition (undirected view).
    auto count = [&](VertexId u) {
      if (placed[u]) score[res.assignment[u]] += 1.0;
    };
    for (VertexId u : g.out_neighbors(v)) count(u);
    for (VertexId u : g.in_neighbors(v)) count(u);
    // LDG objective: |N(v) ∩ part| * (1 - fill/capacity); ties -> the
    // emptiest partition (then lowest id) for determinism.
    VertexId best = 0;
    double best_score = -1.0;
    for (VertexId p = 0; p < P; ++p) {
      const double penalty =
          1.0 - static_cast<double>(fill[p]) / capacity;
      if (penalty <= 0.0) continue;  // partition full
      const double s = score[p] * penalty;
      if (s > best_score ||
          (s == best_score && fill[p] < fill[best]) ||
          (s == best_score && fill[p] == fill[best] && p < best)) {
        best_score = s;
        best = p;
      }
    }
    res.assignment[v] = best;
    ++fill[best];
    placed[v] = true;
  }

  // Edge cut fraction.
  EdgeId cut = 0;
  for (const Edge& e : g.coo().edges())
    if (res.assignment[e.src] != res.assignment[e.dst]) ++cut;
  res.edge_cut_fraction =
      g.num_edges() ? static_cast<double>(cut) / g.num_edges() : 0.0;

  // Relabel so each partition is a contiguous chunk (stable within a
  // partition to keep streaming locality).
  std::vector<VertexId> counts(fill.begin(), fill.end());
  res.partitioning = partition_from_counts(counts);
  std::vector<VertexId> cursor(P);
  for (VertexId p = 0; p < P; ++p) cursor[p] = res.partitioning.begin(p);
  res.perm.resize(n);
  for (VertexId v = 0; v < n; ++v)
    res.perm[v] = cursor[res.assignment[v]]++;
  return res;
}

}  // namespace vebo::order
