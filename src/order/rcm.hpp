// Reverse Cuthill–McKee ordering (George/Liu), the bandwidth-reduction
// baseline of the paper's evaluation. Operates on the undirected view of
// the graph (union of in- and out-adjacency).
#pragma once

#include "graph/graph.hpp"
#include "graph/permute.hpp"

namespace vebo::order {

/// Returns the RCM permutation: new id = perm[old id]. Disconnected
/// components are ordered one after another, each started from a
/// pseudo-peripheral vertex of minimum degree.
Permutation rcm(const Graph& g);

/// Bandwidth of the graph under a labelling: max |label(u) - label(v)|
/// over edges. RCM aims to reduce this.
EdgeId bandwidth(const Graph& g, std::span<const VertexId> perm);

}  // namespace vebo::order
