// Applying vertex permutations (reorderings) to graphs, and checking that
// a reordered graph is isomorphic to the original. Every ordering algorithm
// in src/order produces a permutation consumed by these functions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace vebo {

/// A vertex permutation: new_id = perm[old_id].
using Permutation = std::vector<VertexId>;

/// True iff `perm` is a bijection on 0..n-1.
bool is_permutation(std::span<const VertexId> perm);

/// True iff perm[v] == v for all v (no-op reordering).
bool is_identity(std::span<const VertexId> perm);

/// Inverse permutation: inv[perm[v]] = v.
Permutation invert(std::span<const VertexId> perm);

/// Composition: result[v] = outer[inner[v]] (apply inner first).
Permutation compose(std::span<const VertexId> outer,
                    std::span<const VertexId> inner);

/// Identity permutation of size n.
Permutation identity_permutation(VertexId n);

/// Relabels every edge endpoint: (u,v) -> (perm[u], perm[v]).
EdgeList permute(const EdgeList& el, std::span<const VertexId> perm);

/// Relabels and rebuilds the graph (CSR + CSC + COO).
Graph permute(const Graph& g, std::span<const VertexId> perm);

/// Order-independent structural fingerprint of a graph: a hash over the
/// multiset of canonicalized edges under the identity labelling. Two
/// *equal-labelled* graphs hash equal.
std::uint64_t structural_hash(const Graph& g);

/// Checks that `h` equals `g` relabelled by `perm` (exact isomorphism
/// witness check, not graph-isomorphism search).
bool is_isomorphic_under(const Graph& g, const Graph& h,
                         std::span<const VertexId> perm);

}  // namespace vebo
