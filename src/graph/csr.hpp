// Compressed Sparse Row adjacency structure.
//
// A Csr groups edges by one endpoint: grouped by source it is the classic
// CSR (out-edges), grouped by destination it is the CSC (in-edges) that
// the paper's destination-partitioning operates on.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace vebo {

class Csr {
 public:
  Csr() = default;

  /// Builds from an edge list. If `by_destination` the rows are destination
  /// vertices and the values are sources (CSC); otherwise rows are sources
  /// and values are destinations. Neighbor lists are sorted ascending.
  static Csr build(const EdgeList& el, bool by_destination);

  /// Builds directly from rows: offsets has n+1 entries, neighbors has
  /// offsets[n] entries.
  Csr(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const { return offsets_.empty() ? 0 : offsets_.back(); }

  EdgeId degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  std::span<const EdgeId> offsets() const { return offsets_; }
  std::span<const VertexId> neighbor_array() const { return neighbors_; }

  /// Structural validity: offsets monotone, endpoints in range, rows sorted.
  bool valid() const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  std::vector<EdgeId> offsets_;      // n+1
  std::vector<VertexId> neighbors_;  // m
};

}  // namespace vebo
