// Graph I/O:
//  * Ligra "AdjacencyGraph" text format (what the paper's artifact uses)
//  * plain whitespace edge-list text ("src dst" per line, '#' comments,
//    SNAP download format)
//  * a compact binary format for fast reload in benchmarks
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace vebo::io {

/// Writes the Ligra adjacency format:
///   AdjacencyGraph\n n\n m\n  <n offsets>\n... <m targets>\n...
void write_adjacency(std::ostream& os, const Graph& g);
void write_adjacency_file(const std::string& path, const Graph& g);

/// Reads the Ligra adjacency format. Throws vebo::Error on malformed input.
Graph read_adjacency(std::istream& is, bool directed = true);
Graph read_adjacency_file(const std::string& path, bool directed = true);

/// Writes "src dst" per line.
void write_edge_list(std::ostream& os, const Graph& g);

/// Reads whitespace-separated "src dst" lines; '#'-prefixed lines are
/// comments (SNAP style). Vertex count is 1 + max id unless `n` > 0.
EdgeList read_edge_list(std::istream& is, VertexId n = 0);

/// Binary format with a versioned header:
///   magic (u64), version (u32), n (u64), m (u64), directed (u8),
///   offsets (n+1 x u64), targets (m x u32)  — the out-CSR.
/// Readers reject bad magic, unsupported versions, and truncation with
/// vebo::Error, so streamed snapshots can be persisted and reloaded
/// safely. `binary_format_version()` is the version written.
std::uint32_t binary_format_version();
void write_binary_file(const std::string& path, const Graph& g);
Graph read_binary_file(const std::string& path);

}  // namespace vebo::io
