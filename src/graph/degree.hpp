// Degree statistics: the inputs to VEBO (in-degree sequence) and the
// graph-characterization columns of the paper's Table I.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "support/histogram.hpp"

namespace vebo {

/// In-degree of every vertex.
std::vector<EdgeId> in_degrees(const Graph& g);
/// Out-degree of every vertex.
std::vector<EdgeId> out_degrees(const Graph& g);

/// Histogram of the in-degree distribution.
Histogram in_degree_histogram(const Graph& g);

/// Table I style characterization of a graph.
struct GraphProfile {
  VertexId vertices = 0;
  EdgeId edges = 0;
  EdgeId max_in_degree = 0;
  EdgeId max_out_degree = 0;
  double pct_zero_in = 0.0;   ///< % vertices with zero in-degree
  double pct_zero_out = 0.0;  ///< % vertices with zero out-degree
  double powerlaw_alpha = 0.0;  ///< estimated exponent of p(k) ~ k^-alpha
  bool directed = true;
};

GraphProfile profile(const Graph& g);

/// Vertices sorted by decreasing in-degree, stable on the original id
/// (the processing order of VEBO Algorithm 2, line 4). Runs in O(n + D)
/// via counting sort where D is the max degree.
std::vector<VertexId> vertices_by_decreasing_in_degree(const Graph& g);

/// Same but for an explicit degree array.
std::vector<VertexId> vertices_by_decreasing_degree(
    const std::vector<EdgeId>& degree);

}  // namespace vebo
