#include "graph/graph.hpp"

#include <sstream>

#include "support/error.hpp"

namespace vebo {

Graph Graph::from_edges(EdgeList el) {
  Graph g;
  el.sort_by_source();
  g.n_ = el.num_vertices();
  g.m_ = el.num_edges();
  g.directed_ = el.directed();
  g.out_ = Csr::build(el, /*by_destination=*/false);
  g.in_ = Csr::build(el, /*by_destination=*/true);
  g.coo_ = std::move(el);
  return g;
}

Graph Graph::from_parts(Csr out, Csr in, EdgeList coo, bool directed) {
  VEBO_CHECK(out.num_vertices() == in.num_vertices(),
             "from_parts: CSR/CSC vertex counts disagree");
  VEBO_CHECK(out.num_vertices() == coo.num_vertices(),
             "from_parts: COO vertex count disagrees with CSR");
  VEBO_CHECK(out.num_edges() == in.num_edges(),
             "from_parts: CSR/CSC edge counts disagree");
  VEBO_CHECK(out.num_edges() == coo.num_edges(),
             "from_parts: COO edge count disagrees with CSR");
  VEBO_CHECK(coo.is_sorted_by_source(), "from_parts: COO not sorted by source");
  Graph g;
  g.n_ = out.num_vertices();
  g.m_ = out.num_edges();
  g.directed_ = directed;
  g.out_ = std::move(out);
  g.in_ = std::move(in);
  g.coo_ = std::move(coo);
  return g;
}

EdgeId Graph::max_in_degree() const {
  EdgeId best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, in_degree(v));
  return best;
}

EdgeId Graph::max_out_degree() const {
  EdgeId best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, out_degree(v));
  return best;
}

VertexId Graph::count_zero_in_degree() const {
  VertexId c = 0;
  for (VertexId v = 0; v < n_; ++v)
    if (in_degree(v) == 0) ++c;
  return c;
}

VertexId Graph::count_zero_out_degree() const {
  VertexId c = 0;
  for (VertexId v = 0; v < n_; ++v)
    if (out_degree(v) == 0) ++c;
  return c;
}

std::string Graph::describe(const std::string& name) const {
  std::ostringstream os;
  if (!name.empty()) os << name << ": ";
  os << "|V|=" << n_ << " |E|=" << m_
     << (directed_ ? " directed" : " undirected")
     << " max_in_deg=" << max_in_degree();
  return os.str();
}

}  // namespace vebo
