#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hpp"

namespace vebo::io {

namespace {
constexpr std::uint64_t kBinaryMagic = 0x5645424f47524148ULL;  // "VEBOGRAH"
// Version 1 was the seed's unversioned header (magic directly followed by
// n); version 2 added this explicit field. Bump on any layout change.
constexpr std::uint32_t kBinaryVersion = 2;

}  // namespace

std::uint32_t binary_format_version() { return kBinaryVersion; }

namespace {
/// Shared validation for an untrusted CSR row table before any indexing:
/// the offsets must start at 0, be monotone, and end exactly at the edge
/// array's size — otherwise graph_from_csr_rows below would read
/// targets[] out of bounds on hostile input.
void check_csr_rows(VertexId n, const std::vector<EdgeId>& offsets,
                    std::uint64_t num_targets) {
  VEBO_CHECK(offsets.size() == static_cast<std::size_t>(n) + 1,
             "offset table size mismatch");
  VEBO_CHECK(offsets[0] == 0, "offsets must start at 0");
  for (VertexId v = 0; v < n; ++v)
    VEBO_CHECK(offsets[v] <= offsets[v + 1], "offsets not monotone");
  VEBO_CHECK(static_cast<std::uint64_t>(offsets[n]) == num_targets,
             "offset table does not cover the edge array");
}

Graph graph_from_csr_rows(VertexId n, const std::vector<EdgeId>& offsets,
                          const std::vector<VertexId>& targets,
                          bool directed) {
  check_csr_rows(n, offsets, targets.size());
  std::vector<Edge> edges;
  edges.reserve(targets.size());
  for (VertexId v = 0; v < n; ++v)
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      VEBO_CHECK(targets[e] < n, "target vertex out of range");
      edges.push_back({v, targets[e]});
    }
  return Graph::from_edges(EdgeList(n, std::move(edges), directed));
}
}  // namespace

void write_adjacency(std::ostream& os, const Graph& g) {
  const Csr& csr = g.out_csr();
  os << "AdjacencyGraph\n" << g.num_vertices() << "\n" << g.num_edges()
     << "\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    os << csr.offsets()[v] << "\n";
  for (VertexId u : csr.neighbor_array()) os << u << "\n";
}

void write_adjacency_file(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  VEBO_CHECK(os.good(), "cannot open for writing: " + path);
  write_adjacency(os, g);
}

Graph read_adjacency(std::istream& is, bool directed) {
  std::string header;
  is >> header;
  VEBO_CHECK(header == "AdjacencyGraph",
             "expected 'AdjacencyGraph' header, got '" + header + "'");
  std::uint64_t n = 0, m = 0;
  is >> n >> m;
  VEBO_CHECK(is.good(), "truncated adjacency header");
  VEBO_CHECK(n <= kInvalidVertex, "vertex count out of range");
  // Reject absurd counts before allocating: every offset/target costs at
  // least two bytes of text ("0\n"), so a seekable stream bounds how
  // many entries the header can honestly promise. A crafted "n = 10^15"
  // header must fail here, not inside a 8 PB vector allocation.
  const auto body_start = is.tellg();
  if (body_start != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(body_start);
    if (end != std::istream::pos_type(-1) && end >= body_start) {
      const std::uint64_t remaining =
          static_cast<std::uint64_t>(end - body_start);
      VEBO_CHECK(n <= remaining / 2 && m <= remaining / 2,
                 "counts implausible for stream size");
    }
  }
  std::vector<EdgeId> offsets(n + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    is >> offsets[v];
    VEBO_CHECK(!is.fail(), "truncated offsets");
  }
  offsets[n] = m;
  std::vector<VertexId> targets(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    is >> targets[e];
    VEBO_CHECK(!is.fail(), "truncated edge targets");
  }
  return graph_from_csr_rows(static_cast<VertexId>(n), offsets, targets,
                             directed);
}

Graph read_adjacency_file(const std::string& path, bool directed) {
  std::ifstream is(path);
  VEBO_CHECK(is.good(), "cannot open for reading: " + path);
  return read_adjacency(is, directed);
}

void write_edge_list(std::ostream& os, const Graph& g) {
  for (const Edge& e : g.coo().edges()) os << e.src << " " << e.dst << "\n";
}

EdgeList read_edge_list(std::istream& is, VertexId n) {
  std::vector<Edge> edges;
  VertexId max_id = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t s = 0, d = 0;
    if (!(ls >> s >> d)) continue;
    VEBO_CHECK(s <= kInvalidVertex && d <= kInvalidVertex,
               "vertex id exceeds 32-bit range");
    edges.push_back({static_cast<VertexId>(s), static_cast<VertexId>(d)});
    max_id = std::max({max_id, static_cast<VertexId>(s),
                       static_cast<VertexId>(d)});
  }
  const VertexId count = n > 0 ? n : (edges.empty() ? 0 : max_id + 1);
  return EdgeList(count, std::move(edges), /*directed=*/true);
}

void write_binary_file(const std::string& path, const Graph& g) {
  std::ofstream os(path, std::ios::binary);
  VEBO_CHECK(os.good(), "cannot open for writing: " + path);
  auto put = [&os](const void* p, std::size_t bytes) {
    os.write(static_cast<const char*>(p), static_cast<std::streamsize>(bytes));
  };
  const std::uint64_t n = g.num_vertices(), m = g.num_edges();
  const std::uint8_t dir = g.directed() ? 1 : 0;
  put(&kBinaryMagic, sizeof kBinaryMagic);
  put(&kBinaryVersion, sizeof kBinaryVersion);
  put(&n, sizeof n);
  put(&m, sizeof m);
  put(&dir, sizeof dir);
  const Csr& csr = g.out_csr();
  put(csr.offsets().data(), csr.offsets().size() * sizeof(EdgeId));
  put(csr.neighbor_array().data(),
      csr.neighbor_array().size() * sizeof(VertexId));
  VEBO_CHECK(os.good(), "write failed: " + path);
}

Graph read_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  VEBO_CHECK(is.good(), "cannot open for reading: " + path);
  auto get = [&is, &path](void* p, std::size_t bytes) {
    is.read(static_cast<char*>(p), static_cast<std::streamsize>(bytes));
    VEBO_CHECK(is.gcount() == static_cast<std::streamsize>(bytes),
               "truncated binary graph: " + path);
  };
  std::uint64_t magic = 0, n = 0, m = 0;
  std::uint32_t version = 0;
  std::uint8_t dir = 1;
  get(&magic, sizeof magic);
  VEBO_CHECK(magic == kBinaryMagic, "bad magic in binary graph: " + path);
  get(&version, sizeof version);
  VEBO_CHECK(version == kBinaryVersion,
             "unsupported binary graph version " + std::to_string(version) +
                 " (expected " + std::to_string(kBinaryVersion) +
                 "): " + path);
  get(&n, sizeof n);
  get(&m, sizeof m);
  get(&dir, sizeof dir);
  // A pre-version (v1) file can alias the version field (its n's low 32
  // bits), shifting every later read. The exact payload size the header
  // implies catches that — and any truncation — before allocating.
  VEBO_CHECK(n <= kInvalidVertex, "vertex count out of range: " + path);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  // Bound both counts before the multiplies below so a crafted huge n or
  // m cannot wrap `expected` around and dodge the size check (and so the
  // vector allocations below are bounded by the actual file size).
  VEBO_CHECK(n <= file_size / sizeof(EdgeId),
             "vertex count implausible for file size: " + path);
  VEBO_CHECK(m <= file_size / sizeof(VertexId),
             "edge count implausible for file size: " + path);
  const std::uint64_t expected = sizeof kBinaryMagic + sizeof version +
                                 sizeof n + sizeof m + sizeof dir +
                                 (n + 1) * sizeof(EdgeId) +
                                 m * sizeof(VertexId);
  VEBO_CHECK(file_size == expected,
             "binary graph size mismatch (truncated or legacy format): " +
                 path);
  is.seekg(sizeof kBinaryMagic + sizeof version + sizeof n + sizeof m +
           sizeof dir);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  get(offsets.data(), offsets.size() * sizeof(EdgeId));
  get(targets.data(), targets.size() * sizeof(VertexId));
  return graph_from_csr_rows(static_cast<VertexId>(n), offsets, targets,
                             dir != 0);
}

}  // namespace vebo::io
