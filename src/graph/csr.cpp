#include "graph/csr.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo {

Csr Csr::build(const EdgeList& el, bool by_destination) {
  const VertexId n = el.num_vertices();
  const auto edges = el.edges();

  std::vector<EdgeId> counts(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges) {
    const VertexId row = by_destination ? e.dst : e.src;
    ++counts[row + 1];
  }
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) offsets[i] = offsets[i - 1] + counts[i];

  std::vector<VertexId> neighbors(edges.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const VertexId row = by_destination ? e.dst : e.src;
    const VertexId val = by_destination ? e.src : e.dst;
    neighbors[cursor[row]++] = val;
  }
  // Sort each row for deterministic traversal and binary-searchable rows.
  for (VertexId v = 0; v < n; ++v)
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  return Csr(std::move(offsets), std::move(neighbors));
}

Csr::Csr(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  VEBO_CHECK(!offsets_.empty(), "CSR offsets must have at least one entry");
  VEBO_CHECK(offsets_.back() == neighbors_.size(),
             "CSR offsets/neighbors size mismatch");
}

bool Csr::valid() const {
  if (offsets_.empty()) return false;
  if (offsets_.front() != 0) return false;
  const VertexId n = num_vertices();
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    if (offsets_[i] > offsets_[i + 1]) return false;
  if (offsets_.back() != neighbors_.size()) return false;
  for (VertexId v = 0; v < n; ++v) {
    auto row = neighbors(v);
    if (!std::is_sorted(row.begin(), row.end())) return false;
    for (VertexId u : row)
      if (u >= n) return false;
  }
  return true;
}

}  // namespace vebo
