// The Graph type: dual CSR/CSC adjacency plus the original COO, which is
// what the frontier-based framework traverses (push uses out-edges, pull
// uses in-edges) and what the GraphGrind COO path iterates.
#pragma once

#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace vebo {

class Graph {
 public:
  Graph() = default;

  /// Builds CSR (out) and CSC (in) from an edge list. The edge list is
  /// retained (sorted by source) for COO traversal.
  static Graph from_edges(EdgeList el);

  /// Builds a Graph from already-compacted parts without re-sorting: an
  /// out-CSR, the matching in-CSC, and the COO (sorted by source). This is
  /// the streaming snapshot hook — DeltaGraph::snapshot() merges its delta
  /// blocks directly into CSR/CSC rows and hands them over here. Checks
  /// cheap structural consistency (vertex counts, edge counts, COO sort
  /// order); full row-content agreement is the caller's contract.
  static Graph from_parts(Csr out, Csr in, EdgeList coo, bool directed);

  VertexId num_vertices() const { return n_; }
  EdgeId num_edges() const { return m_; }
  bool directed() const { return directed_; }

  EdgeId out_degree(VertexId v) const { return out_.degree(v); }
  EdgeId in_degree(VertexId v) const { return in_.degree(v); }

  /// Out-neighbors of v (push direction).
  std::span<const VertexId> out_neighbors(VertexId v) const {
    return out_.neighbors(v);
  }
  /// In-neighbors of v (pull direction; the paper's "sources of v").
  std::span<const VertexId> in_neighbors(VertexId v) const {
    return in_.neighbors(v);
  }

  const Csr& out_csr() const { return out_; }
  const Csr& in_csr() const { return in_; }
  const EdgeList& coo() const { return coo_; }

  /// Maximum in-degree; N in the paper is max_in_degree()+1.
  EdgeId max_in_degree() const;
  EdgeId max_out_degree() const;

  /// Vertices with zero in-degree / out-degree (paper's Table I columns).
  VertexId count_zero_in_degree() const;
  VertexId count_zero_out_degree() const;

  /// One-line description for logs and benches.
  std::string describe(const std::string& name = "") const;

 private:
  VertexId n_ = 0;
  EdgeId m_ = 0;
  bool directed_ = true;
  Csr out_;       // rows = sources
  Csr in_;        // rows = destinations (CSC)
  EdgeList coo_;  // sorted by source
};

}  // namespace vebo
