// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>

namespace vebo {

/// Vertex identifier. 32 bits covers all graphs this build targets
/// (the paper's largest graph, Friendster, has 125M vertices).
using VertexId = std::uint32_t;

/// Edge identifier / edge counts. 64 bits (Twitter has 1.47B edges).
using EdgeId = std::uint64_t;

/// A single directed edge (source -> destination).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

}  // namespace vebo
