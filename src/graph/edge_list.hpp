// COO (coordinate format) edge list: the canonical ingestion and
// interchange representation. Generators produce EdgeLists, CSR/CSC are
// built from them, and the GraphGrind-style dense traversal iterates a COO
// directly in CSR or Hilbert edge order.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace vebo {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges,
           bool directed = true);

  VertexId num_vertices() const { return n_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(edges_.size()); }
  bool directed() const { return directed_; }

  std::span<const Edge> edges() const { return edges_; }
  std::span<Edge> mutable_edges() { return edges_; }

  void add(VertexId src, VertexId dst);

  /// Ensures every referenced endpoint is < num_vertices; grows n if
  /// grow==true, otherwise throws.
  void validate(bool grow = false);

  /// Removes self loops (u,u).
  void remove_self_loops();

  /// Removes duplicate edges (sorts as a side effect).
  void remove_duplicates();

  /// Adds the reverse of every edge, then dedupes. Marks undirected.
  void symmetrize();

  /// Sorts edges by (src, dst) — the "CSR order" of the paper's Sec. V-G.
  void sort_by_source();
  /// Sorts edges by (dst, src).
  void sort_by_destination();

  bool is_sorted_by_source() const;

 private:
  VertexId n_ = 0;
  std::vector<Edge> edges_;
  bool directed_ = true;
};

}  // namespace vebo
