#include "graph/degree.hpp"

#include <algorithm>

namespace vebo {

std::vector<EdgeId> in_degrees(const Graph& g) {
  std::vector<EdgeId> d(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) d[v] = g.in_degree(v);
  return d;
}

std::vector<EdgeId> out_degrees(const Graph& g) {
  std::vector<EdgeId> d(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) d[v] = g.out_degree(v);
  return d;
}

Histogram in_degree_histogram(const Graph& g) {
  Histogram h;
  for (VertexId v = 0; v < g.num_vertices(); ++v) h.add(g.in_degree(v));
  return h;
}

GraphProfile profile(const Graph& g) {
  GraphProfile p;
  p.vertices = g.num_vertices();
  p.edges = g.num_edges();
  p.max_in_degree = g.max_in_degree();
  p.max_out_degree = g.max_out_degree();
  const double n = std::max<double>(1.0, g.num_vertices());
  p.pct_zero_in = 100.0 * g.count_zero_in_degree() / n;
  p.pct_zero_out = 100.0 * g.count_zero_out_degree() / n;
  p.powerlaw_alpha = in_degree_histogram(g).powerlaw_exponent(1);
  p.directed = g.directed();
  return p;
}

std::vector<VertexId> vertices_by_decreasing_degree(
    const std::vector<EdgeId>& degree) {
  const std::size_t n = degree.size();
  EdgeId maxd = 0;
  for (EdgeId d : degree) maxd = std::max(maxd, d);
  // Counting sort, descending by degree, ascending by vertex id within a
  // degree class (stability keeps runs of consecutive original ids
  // together, which the blocked VEBO variant exploits).
  std::vector<std::size_t> count(maxd + 2, 0);
  for (EdgeId d : degree) ++count[maxd - d + 1];
  for (std::size_t i = 1; i < count.size(); ++i) count[i] += count[i - 1];
  std::vector<VertexId> order(n);
  for (std::size_t v = 0; v < n; ++v)
    order[count[maxd - degree[v]]++] = static_cast<VertexId>(v);
  return order;
}

std::vector<VertexId> vertices_by_decreasing_in_degree(const Graph& g) {
  return vertices_by_decreasing_degree(in_degrees(g));
}

}  // namespace vebo
