#include "graph/edge_list.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo {

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edges,
                   bool directed)
    : n_(num_vertices), edges_(std::move(edges)), directed_(directed) {
  validate(false);
}

void EdgeList::add(VertexId src, VertexId dst) {
  edges_.push_back({src, dst});
  if (src >= n_) n_ = src + 1;
  if (dst >= n_) n_ = dst + 1;
}

void EdgeList::validate(bool grow) {
  for (const Edge& e : edges_) {
    if (e.src >= n_ || e.dst >= n_) {
      VEBO_CHECK(grow, "edge endpoint out of range");
      n_ = std::max(n_, std::max(e.src, e.dst) + 1);
    }
  }
}

void EdgeList::remove_self_loops() {
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
}

void EdgeList::remove_duplicates() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::symmetrize() {
  const std::size_t orig = edges_.size();
  edges_.reserve(orig * 2);
  for (std::size_t i = 0; i < orig; ++i)
    edges_.push_back({edges_[i].dst, edges_[i].src});
  remove_duplicates();
  directed_ = false;
}

void EdgeList::sort_by_source() {
  std::sort(edges_.begin(), edges_.end());
}

void EdgeList::sort_by_destination() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.src < b.src;
  });
}

bool EdgeList::is_sorted_by_source() const {
  return std::is_sorted(edges_.begin(), edges_.end());
}

}  // namespace vebo
