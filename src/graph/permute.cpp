#include "graph/permute.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace vebo {

bool is_permutation(std::span<const VertexId> perm) {
  std::vector<bool> seen(perm.size(), false);
  for (VertexId p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

bool is_identity(std::span<const VertexId> perm) {
  for (std::size_t v = 0; v < perm.size(); ++v)
    if (perm[v] != v) return false;
  return true;
}

Permutation invert(std::span<const VertexId> perm) {
  Permutation inv(perm.size(), kInvalidVertex);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    VEBO_CHECK(perm[v] < perm.size(), "invert: value out of range");
    VEBO_CHECK(inv[perm[v]] == kInvalidVertex, "invert: not a bijection");
    inv[perm[v]] = static_cast<VertexId>(v);
  }
  return inv;
}

Permutation compose(std::span<const VertexId> outer,
                    std::span<const VertexId> inner) {
  VEBO_CHECK(outer.size() == inner.size(), "compose: size mismatch");
  Permutation out(inner.size());
  for (std::size_t v = 0; v < inner.size(); ++v) out[v] = outer[inner[v]];
  return out;
}

Permutation identity_permutation(VertexId n) {
  Permutation p(n);
  for (VertexId v = 0; v < n; ++v) p[v] = v;
  return p;
}

EdgeList permute(const EdgeList& el, std::span<const VertexId> perm) {
  VEBO_CHECK(perm.size() == el.num_vertices(),
             "permute: permutation size != vertex count");
  std::vector<Edge> edges;
  edges.reserve(el.num_edges());
  for (const Edge& e : el.edges())
    edges.push_back({perm[e.src], perm[e.dst]});
  return EdgeList(el.num_vertices(), std::move(edges), el.directed());
}

Graph permute(const Graph& g, std::span<const VertexId> perm) {
  return Graph::from_edges(permute(g.coo(), perm));
}

std::uint64_t structural_hash(const Graph& g) {
  // Commutative hash over edges so it is independent of edge order.
  std::uint64_t h = mix64(g.num_vertices());
  for (const Edge& e : g.coo().edges()) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    h += mix64(key);
  }
  return h;
}

bool is_isomorphic_under(const Graph& g, const Graph& h,
                         std::span<const VertexId> perm) {
  if (g.num_vertices() != h.num_vertices()) return false;
  if (g.num_edges() != h.num_edges()) return false;
  if (!is_permutation(perm)) return false;
  Graph relabelled = permute(g, perm);
  // Compare CSRs: both builders sort rows, so equality is canonical.
  return relabelled.out_csr() == h.out_csr();
}

}  // namespace vebo
