#include "simarch/trace.hpp"

#include <algorithm>

#include "simarch/branch.hpp"
#include "simarch/cache.hpp"
#include "simarch/tlb.hpp"
#include "support/error.hpp"

namespace vebo::simarch {

double ArchReport::mean_local() const {
  double s = 0.0;
  for (const auto& t : per_thread) s += t.local_mpki;
  return per_thread.empty() ? 0.0 : s / static_cast<double>(per_thread.size());
}
double ArchReport::mean_remote() const {
  double s = 0.0;
  for (const auto& t : per_thread) s += t.remote_mpki;
  return per_thread.empty() ? 0.0 : s / static_cast<double>(per_thread.size());
}
double ArchReport::mean_tlb() const {
  double s = 0.0;
  for (const auto& t : per_thread) s += t.tlb_mpki;
  return per_thread.empty() ? 0.0 : s / static_cast<double>(per_thread.size());
}
double ArchReport::mean_branch() const {
  double s = 0.0;
  for (const auto& t : per_thread) s += t.branch_mpki;
  return per_thread.empty() ? 0.0 : s / static_cast<double>(per_thread.size());
}

namespace {

// Simulated address-space layout. Distinct, page-aligned regions so the
// TLB sees realistic page mixing.
constexpr std::uint64_t kSrcDataBase = 0x1000'0000ULL;   // per-vertex reads
constexpr std::uint64_t kDstDataBase = 0x5000'0000ULL;   // per-vertex writes
constexpr std::uint64_t kIndexBase = 0x9000'0000ULL;     // CSC structure
constexpr std::uint64_t kWordBytes = 8;
constexpr std::uint64_t kIdxBytes = 4;

/// Home socket of a vertex: the socket whose thread-block owns the
/// vertex's partition.
class HomeMap {
 public:
  HomeMap(const order::Partitioning& part, const MachineConfig& cfg)
      : part_(&part), cfg_(&cfg) {}

  std::size_t socket_of_partition(std::size_t p) const {
    const std::size_t P = part_->num_partitions();
    // Partition p belongs to thread p*T/P, thread t to socket t/TPS.
    const std::size_t t = p * cfg_->threads() / P;
    return t / cfg_->threads_per_socket;
  }

  std::size_t socket_of_vertex(VertexId v) const {
    return socket_of_partition(part_->owner(v));
  }

 private:
  const order::Partitioning* part_;
  const MachineConfig* cfg_;
};

struct ThreadSim {
  CacheSim cache;
  TlbSim tlb;
  BranchSim branch;
  std::uint64_t local_misses = 0;
  std::uint64_t remote_misses = 0;
  std::uint64_t ops = 0;

  explicit ThreadSim(const MachineConfig& cfg)
      : cache(cfg.cache_bytes, cfg.cache_line, cfg.cache_ways),
        tlb(cfg.tlb_entries, cfg.page_bytes) {}

  void data_access(std::uint64_t addr, bool remote_home) {
    ++ops;
    tlb.access(addr);
    if (!cache.access(addr)) {
      if (remote_home)
        ++remote_misses;
      else
        ++local_misses;
    }
  }

  ThreadStats stats() const {
    ThreadStats s;
    const double k = ops ? 1000.0 / static_cast<double>(ops) : 0.0;
    s.local_mpki = static_cast<double>(local_misses) * k;
    s.remote_mpki = static_cast<double>(remote_misses) * k;
    s.tlb_mpki = static_cast<double>(tlb.misses()) * k;
    s.branch_mpki = static_cast<double>(branch.mispredictions()) * k;
    s.ops = ops;
    return s;
  }
};

}  // namespace

ArchReport simulate_edgemap(const Graph& g, const order::Partitioning& part,
                            const MachineConfig& cfg) {
  VEBO_CHECK(part.num_partitions() >= 1, "simulate_edgemap: no partitions");
  const std::size_t T = cfg.threads();
  const std::size_t P = part.num_partitions();
  HomeMap home(part, cfg);
  ArchReport report;
  report.per_thread.reserve(T);

  const std::uint64_t kLoopPc = 0x40;  // the inner-loop back-edge branch

  for (std::size_t t = 0; t < T; ++t) {
    ThreadSim sim(cfg);
    const std::size_t my_socket = t / cfg.threads_per_socket;
    const std::size_t plo = t * P / T;
    const std::size_t phi = (t + 1) * P / T;
    for (std::size_t p = plo; p < phi; ++p) {
      for (VertexId v = part.begin(static_cast<VertexId>(p));
           v < part.end(static_cast<VertexId>(p)); ++v) {
        auto in = g.in_neighbors(v);
        // Offsets array read (sequential).
        sim.data_access(kIndexBase + static_cast<std::uint64_t>(v) * kIdxBytes,
                        false);
        for (std::size_t i = 0; i < in.size(); ++i) {
          const VertexId u = in[i];
          // CSC neighbor index stream (sequential within the row).
          sim.data_access(
              kIndexBase + 0x4000'0000ULL +
                  (g.in_csr().offsets()[v] + i) * kIdxBytes,
              false);
          // Source data load: NUMA home decides local vs remote.
          sim.data_access(kSrcDataBase + static_cast<std::uint64_t>(u) *
                                             kWordBytes,
                          home.socket_of_vertex(u) != my_socket);
          // Inner-loop back-edge: taken while more edges remain.
          sim.branch.branch(kLoopPc, i + 1 < in.size());
        }
        // Destination accumulator store (always homed locally).
        sim.data_access(kDstDataBase + static_cast<std::uint64_t>(v) *
                                           kWordBytes,
                        false);
      }
    }
    report.per_thread.push_back(sim.stats());
  }
  return report;
}

ArchReport simulate_vertexmap(const Graph& g,
                              const order::Partitioning& part,
                              const MachineConfig& cfg) {
  const std::size_t T = cfg.threads();
  const VertexId n = g.num_vertices();
  HomeMap home(part, cfg);
  ArchReport report;
  report.per_thread.reserve(T);

  for (std::size_t t = 0; t < T; ++t) {
    ThreadSim sim(cfg);
    const std::size_t my_socket = t / cfg.threads_per_socket;
    // GraphGrind's vertexmap splits the id range evenly across threads,
    // regardless of where the data is homed — that mismatch is the source
    // of its remote misses when partitions have unequal vertex counts.
    const VertexId lo = static_cast<VertexId>(
        static_cast<std::uint64_t>(t) * n / T);
    const VertexId hi = static_cast<VertexId>(
        static_cast<std::uint64_t>(t + 1) * n / T);
    for (VertexId v = lo; v < hi; ++v) {
      sim.data_access(kDstDataBase + static_cast<std::uint64_t>(v) *
                                         kWordBytes,
                      home.socket_of_vertex(v) != my_socket);
      // Vertexmap bodies branch on per-vertex state; model a data-
      // dependent branch on the degree parity (cheap, deterministic).
      sim.branch.branch(0x80, (g.in_degree(v) & 1) != 0);
    }
    report.per_thread.push_back(sim.stats());
  }
  return report;
}

}  // namespace vebo::simarch
