#include "simarch/cache.hpp"

#include "support/error.hpp"

namespace vebo::simarch {

namespace {
int log2_exact(std::size_t v) {
  int s = 0;
  while ((std::size_t{1} << s) < v) ++s;
  VEBO_CHECK((std::size_t{1} << s) == v, "value must be a power of two");
  return s;
}
}  // namespace

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes,
                   std::size_t ways)
    : sets_(size_bytes / line_bytes / ways),
      ways_(ways),
      line_shift_(log2_exact(line_bytes)) {
  VEBO_CHECK(sets_ >= 1, "cache too small for its associativity");
  VEBO_CHECK(size_bytes == sets_ * ways_ * line_bytes,
             "cache size must be sets*ways*line");
  tags_.assign(sets_ * ways_, 0);
  lru_.assign(sets_ * ways_, 0);
  valid_.assign(sets_ * ways_, false);
}

bool CacheSim::access(std::uint64_t address) {
  ++accesses_;
  ++clock_;
  const std::uint64_t line = address >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const std::size_t base = set * ways_;
  // Hit?
  for (std::size_t w = 0; w < ways_; ++w) {
    if (valid_[base + w] && tags_[base + w] == line) {
      lru_[base + w] = clock_;
      return true;
    }
  }
  ++misses_;
  // Fill: invalid way first, else LRU.
  std::size_t victim = 0;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!valid_[base + w]) {
      victim = w;
      break;
    }
    if (lru_[base + w] < oldest) {
      oldest = lru_[base + w];
      victim = w;
    }
  }
  valid_[base + victim] = true;
  tags_[base + victim] = line;
  lru_[base + victim] = clock_;
  return false;
}

}  // namespace vebo::simarch
