// Branch predictor simulator (gshare): global history XOR branch id
// indexes a table of 2-bit saturating counters. The interesting branch in
// CSR/CSC traversal is the inner-loop back-edge whose trip count is the
// vertex degree — the paper attributes VEBO's lower misprediction rate to
// consecutive vertices having equal degree (Section V-E).
#pragma once

#include <cstdint>
#include <vector>

namespace vebo::simarch {

class BranchSim {
 public:
  explicit BranchSim(int table_bits = 14, int history_bits = 12);

  /// Simulates one conditional branch; returns true if predicted right.
  bool branch(std::uint64_t pc, bool taken);

  std::uint64_t branches() const { return branches_; }
  std::uint64_t mispredictions() const { return mispredictions_; }
  double misprediction_rate() const {
    return branches_ ? static_cast<double>(mispredictions_) / branches_
                     : 0.0;
  }
  void reset_stats() { branches_ = mispredictions_ = 0; }

 private:
  std::vector<std::uint8_t> table_;  // 2-bit counters
  std::uint64_t table_mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
  std::uint64_t branches_ = 0;
  std::uint64_t mispredictions_ = 0;
};

}  // namespace vebo::simarch
