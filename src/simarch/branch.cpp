#include "simarch/branch.hpp"

#include "support/error.hpp"

namespace vebo::simarch {

BranchSim::BranchSim(int table_bits, int history_bits) {
  VEBO_CHECK(table_bits >= 4 && table_bits <= 24, "table_bits out of range");
  VEBO_CHECK(history_bits >= 0 && history_bits <= table_bits,
             "history_bits out of range");
  table_.assign(std::size_t{1} << table_bits, 1);  // weakly not-taken
  table_mask_ = (std::uint64_t{1} << table_bits) - 1;
  history_mask_ = (std::uint64_t{1} << history_bits) - 1;
}

bool BranchSim::branch(std::uint64_t pc, bool taken) {
  ++branches_;
  const std::uint64_t idx = (pc ^ history_) & table_mask_;
  std::uint8_t& counter = table_[idx];
  const bool predicted_taken = counter >= 2;
  const bool correct = predicted_taken == taken;
  if (!correct) ++mispredictions_;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
  return correct;
}

}  // namespace vebo::simarch
