// Trace-driven simulation of the edgemap and vertexmap kernels on a
// modeled multi-socket machine.
//
// Machine model (matching the paper's testbed shape): `sockets` NUMA
// nodes x `threads_per_socket` threads. Partitions are bound to threads
// in contiguous blocks (thread t runs partitions [t*P/T, (t+1)*P/T), the
// paper's "thread t executes partitions 8t..8t+7"). Vertex data is
// distributed NUMA-style: the home socket of vertex v is the socket of
// the partition owning v. Each simulated thread has a private cache, TLB
// and branch predictor; a miss on data homed on another socket counts as
// a *remote* miss.
//
// The simulated kernels replay the real access streams:
//  * edgemap: per destination v in the thread's partitions, stream the
//    CSC row (sequential index loads), load src data per in-edge, store
//    the destination accumulator; the inner-loop back-edge is the
//    simulated branch.
//  * vertexmap: iterations are split equally over threads by vertex id
//    (GraphGrind's vertexmap), touching one data word per vertex.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "order/partition.hpp"

namespace vebo::simarch {

struct MachineConfig {
  std::size_t sockets = 4;
  std::size_t threads_per_socket = 12;
  std::size_t cache_bytes = 1u << 20;   ///< per-thread LLC slice (1 MiB)
  std::size_t cache_line = 64;
  std::size_t cache_ways = 16;
  std::size_t tlb_entries = 64;
  std::size_t page_bytes = 4096;

  std::size_t threads() const { return sockets * threads_per_socket; }
};

/// Per-thread simulated counters, reported as events per 1000 simulated
/// operations (the paper's MPKI convention with instructions ~ ops).
struct ThreadStats {
  double local_mpki = 0.0;
  double remote_mpki = 0.0;
  double tlb_mpki = 0.0;
  double branch_mpki = 0.0;
  std::uint64_t ops = 0;
};

struct ArchReport {
  std::vector<ThreadStats> per_thread;

  double mean_local() const;
  double mean_remote() const;
  double mean_tlb() const;
  double mean_branch() const;
};

/// Simulates one pull-mode edgemap sweep (all destinations active).
ArchReport simulate_edgemap(const Graph& g, const order::Partitioning& part,
                            const MachineConfig& cfg = {});

/// Simulates one vertexmap sweep over all vertices.
ArchReport simulate_vertexmap(const Graph& g,
                              const order::Partitioning& part,
                              const MachineConfig& cfg = {});

}  // namespace vebo::simarch
