// Set-associative LRU cache simulator. Stands in for the hardware LLC
// counters of the paper's evaluation (Figure 4, Table V): reordering
// changes the access pattern of the same kernels, and the simulator
// exposes the resulting miss-rate changes.
#pragma once

#include <cstdint>
#include <vector>

namespace vebo::simarch {

class CacheSim {
 public:
  /// size_bytes/line_bytes must be a multiple of `ways`.
  CacheSim(std::size_t size_bytes, std::size_t line_bytes, std::size_t ways);

  /// Simulates one access; returns true on hit.
  bool access(std::uint64_t address);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / accesses_ : 0.0;
  }

  void reset_stats() { accesses_ = misses_ = 0; }

  std::size_t num_sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

 private:
  std::size_t sets_;
  std::size_t ways_;
  int line_shift_;
  /// tags_[set*ways + way]; lru_[same index] = last-use stamp.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::vector<bool> valid_;
  std::uint64_t clock_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vebo::simarch
