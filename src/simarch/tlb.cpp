#include "simarch/tlb.hpp"

#include "support/error.hpp"

namespace vebo::simarch {

TlbSim::TlbSim(std::size_t entries, std::size_t page_bytes)
    : entries_(entries) {
  VEBO_CHECK(entries_ >= 1, "TLB needs at least one entry");
  page_shift_ = 0;
  while ((std::size_t{1} << page_shift_) < page_bytes) ++page_shift_;
  VEBO_CHECK((std::size_t{1} << page_shift_) == page_bytes,
             "page size must be a power of two");
}

bool TlbSim::access(std::uint64_t address) {
  ++accesses_;
  const std::uint64_t page = address >> page_shift_;
  const auto it = map_.find(page);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (map_.size() >= entries_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

}  // namespace vebo::simarch
