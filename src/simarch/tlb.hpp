// TLB simulator: fully associative LRU over virtual pages.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace vebo::simarch {

class TlbSim {
 public:
  explicit TlbSim(std::size_t entries = 64, std::size_t page_bytes = 4096);

  /// Simulates one translation; returns true on hit.
  bool access(std::uint64_t address);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats() { accesses_ = misses_ = 0; }

 private:
  std::size_t entries_;
  int page_shift_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vebo::simarch
