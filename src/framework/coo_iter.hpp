// Partitioned COO traversal: the GraphGrind dense-frontier path.
//
// Edges are grouped by the partition owning their *destination* (data-race
// freedom: only the owning partition writes a destination), and within a
// partition ordered by CSR (source-major), CSC (destination-major) or the
// Hilbert space-filling curve — the axis studied in Section V-G / Fig. 6.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "order/partition.hpp"

namespace vebo {

enum class EdgeOrder { Csr, Csc, Hilbert };

std::string to_string(EdgeOrder o);

struct PartitionedCoo {
  std::vector<Edge> edges;            ///< grouped by destination partition
  std::vector<std::size_t> offsets;   ///< P+1 group boundaries

  std::size_t num_partitions() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const Edge> partition(std::size_t p) const {
    return {edges.data() + offsets[p], edges.data() + offsets[p + 1]};
  }
};

/// Builds the partitioned COO for a graph under a destination partitioning.
PartitionedCoo build_partitioned_coo(const Graph& g,
                                     const order::Partitioning& part,
                                     EdgeOrder order);

}  // namespace vebo
