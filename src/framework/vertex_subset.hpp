// VertexSubset: the frontier abstraction of Ligra. A subset of vertices
// kept either sparse (sorted id list) or dense (bitset); edgemap converts
// between the two based on frontier density (the direction-reversal
// heuristic of Beamer et al. adopted by all three systems in the paper).
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "support/bitset.hpp"

namespace vebo {

class VertexSubset {
 public:
  VertexSubset() = default;

  static VertexSubset empty(VertexId n);
  static VertexSubset single(VertexId n, VertexId v);
  static VertexSubset all(VertexId n);
  /// Takes ownership of a sparse id list (sorted or not; will be sorted).
  static VertexSubset from_sparse(VertexId n, std::vector<VertexId> ids);
  static VertexSubset from_bitset(DynamicBitset bits);

  VertexId universe_size() const { return n_; }
  /// Number of vertices in the subset.
  VertexId size() const { return size_; }
  bool empty_set() const { return size_ == 0; }

  bool is_dense() const { return dense_; }

  /// Membership test (works in both representations).
  bool contains(VertexId v) const;

  /// Converts in place.
  void to_dense();
  void to_sparse();

  /// Sparse view (requires sparse representation).
  std::span<const VertexId> vertices() const;
  /// Dense view (requires dense representation).
  const DynamicBitset& bits() const;

  /// Applies fn(v) for each member, in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dense_) {
      for (VertexId v = 0; v < n_; ++v)
        if (bits_.get(v)) fn(v);
    } else {
      for (VertexId v : sparse_) fn(v);
    }
  }

 private:
  VertexId n_ = 0;
  VertexId size_ = 0;
  bool dense_ = false;
  std::vector<VertexId> sparse_;
  DynamicBitset bits_;
};

}  // namespace vebo
