// VertexSubset: the frontier abstraction of Ligra. A subset of vertices
// kept either sparse (id list) or dense (bitset); edgemap converts
// between the two based on frontier density (the direction-reversal
// heuristic of Beamer et al. adopted by all three systems in the paper).
//
// Frontier-pipeline invariants (this repo's scan-compacted design):
//  * Conversions are parallel and keep BOTH representations valid — a
//    BFS that ping-pongs sparse/dense per round converts each way at most
//    once per frontier and never reallocates the bitset it just dropped.
//  * The sum of out-degrees (what the push/pull heuristic needs) is
//    computed once per frontier and cached; edgemap seeds the cache for
//    the frontiers it produces, so the heuristic is O(1) on hot paths.
//  * Sparse lists produced by scan compaction (from_packed) may be
//    unsorted; `sparse_sorted()` says whether ascending order holds.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"
#include "parallel/parallel_for.hpp"
#include "support/bitset.hpp"

namespace vebo {

class Graph;

/// Sentinel for "no cached edge count".
inline constexpr EdgeId kInvalidEdgeCount = static_cast<EdgeId>(-1);

class VertexSubset {
 public:
  VertexSubset() = default;

  static VertexSubset empty(VertexId n);
  static VertexSubset single(VertexId n, VertexId v);
  static VertexSubset all(VertexId n);
  /// Takes ownership of a sparse id list (sorted or not; will be sorted,
  /// deduplicated, and range-checked).
  static VertexSubset from_sparse(VertexId n, std::vector<VertexId> ids);
  /// Trusted fast path for scan-compacted output: ids must be unique and
  /// in range, but may be unsorted (`sorted` reports ascending order).
  static VertexSubset from_packed(VertexId n, std::vector<VertexId> ids,
                                  bool sorted);
  static VertexSubset from_bitset(DynamicBitset bits,
                                  const ForOptions& opts = {});
  /// Adopts the atomic bitset's word storage (no copy) and counts the
  /// members word-parallel; pass `size_hint` when the caller already
  /// knows the population to skip the count.
  static VertexSubset from_atomic(AtomicBitset&& bits,
                                  VertexId size_hint = kInvalidVertex,
                                  const ForOptions& opts = {});

  VertexId universe_size() const { return n_; }
  /// Number of vertices in the subset.
  VertexId size() const { return size_; }
  bool empty_set() const { return size_ == 0; }
  /// True when the subset contains every vertex of its universe — the
  /// complete-frontier case the dense kernels specialize on (no per-edge
  /// membership probe). Derived from the exact member count, so it is
  /// preserved across construction paths and conversions alike.
  bool is_complete() const { return n_ > 0 && size_ == n_; }

  /// Primary representation (what edgemap would traverse).
  bool is_dense() const { return dense_; }
  /// Representation availability: conversions retain the source rep, so
  /// both can be true at once.
  bool has_sparse() const { return have_sparse_; }
  bool has_dense() const { return have_dense_; }
  /// True when the sparse list is in ascending id order.
  bool sparse_sorted() const { return sparse_sorted_; }

  /// Membership test (works in both representations).
  bool contains(VertexId v) const;

  /// Converts in place (parallel; `opts` selects pool/schedule, e.g. the
  /// engine's vertex_loop()). The previous representation is kept —
  /// converting back is O(1).
  void to_dense(const ForOptions& opts = {});
  void to_sparse(const ForOptions& opts = {});

  /// Sparse view (requires has_sparse()).
  std::span<const VertexId> vertices() const;
  /// Dense view (requires has_dense()).
  const DynamicBitset& bits() const;

  /// Sum of out-degrees of the members — the quantity the push/pull
  /// direction heuristic needs. Computed in parallel on first use and
  /// cached (membership is immutable after construction).
  EdgeId out_edges(const Graph& g, const ForOptions& opts = {}) const;
  /// In-degree twin of out_edges() (CC's both-direction heuristic).
  EdgeId in_edges(const Graph& g, const ForOptions& opts = {}) const;
  /// Seeds the out-edge cache when the producer already knows the sum
  /// (e.g. edgemap's sparse path computes it as its offset-scan total).
  void set_out_edges(EdgeId sum) const { out_edges_ = sum; }
  /// True when out_edges() would return a cached value without a degree
  /// walk. Lets observers (the tracer) read the heuristic's input when it
  /// was actually computed without ever forcing the computation.
  bool has_out_edges() const { return out_edges_ != kInvalidEdgeCount; }

  /// Applies fn(v) for each member. Ascending id order unless the subset
  /// only holds an unsorted packed list (no dense rep to walk instead).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (have_dense_ && (!have_sparse_ || !sparse_sorted_)) {
      for (std::size_t w = 0; w < bits_.num_words(); ++w)
        detail::for_each_set_bit(bits_.word(w), w * 64, [&](std::size_t i) {
          fn(static_cast<VertexId>(i));
        });
    } else {
      for (VertexId v : sparse_) fn(v);
    }
  }

 private:
  VertexId n_ = 0;
  VertexId size_ = 0;
  bool dense_ = false;         // primary representation
  bool have_sparse_ = true;    // sparse_ matches the membership
  bool have_dense_ = false;    // bits_ matches the membership
  bool sparse_sorted_ = true;  // sparse_ is ascending
  std::vector<VertexId> sparse_;
  DynamicBitset bits_;
  mutable EdgeId out_edges_ = kInvalidEdgeCount;  // cached degree sums
  mutable EdgeId in_edges_ = kInvalidEdgeCount;
};

}  // namespace vebo
