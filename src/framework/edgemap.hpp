// edgemap / vertexmap: the two traversal primitives of Ligra, Polymer and
// GraphGrind (Section IV of the paper).
//
// An edgemap functor F provides (Ligra's interface):
//   bool update(u, v)        — apply edge u->v; single writer per v (pull)
//   bool update_atomic(u, v) — apply edge u->v; concurrent writers (push)
//   bool cond(v)             — should destination v still be processed?
// Both update functions return true iff v became active for the next
// frontier.
//
// Direction reversal: sparse frontiers traverse out-edges of active
// vertices (push); frontiers denser than |E|/20 traverse in-edges of every
// destination satisfying cond (pull). Partitioned engines (Polymer,
// GraphGrind) run the pull phase partition-by-partition under static
// scheduling — the configuration whose load balance VEBO fixes.
#pragma once

#include <vector>

#include "framework/engine.hpp"
#include "framework/vertex_subset.hpp"
#include "support/bitset.hpp"

namespace vebo {

enum class Direction { Auto, Push, Pull };

struct EdgeMapOptions {
  Direction direction = Direction::Auto;
  /// Pull loop breaks out of a destination's in-edge scan as soon as
  /// cond(v) turns false (Ligra's early exit, e.g. BFS parent setting).
  bool pull_early_exit = true;
};

namespace detail {

/// Sum of out-degrees of the frontier (sparse representation).
inline EdgeId frontier_out_edges(const Graph& g, const VertexSubset& f) {
  EdgeId sum = 0;
  f.for_each([&](VertexId v) { sum += g.out_degree(v); });
  return sum;
}

}  // namespace detail

/// Dense (pull) edgemap over destination range [lo, hi).
template <typename F>
void edge_map_pull_range(const Graph& g, const DynamicBitset& frontier,
                         AtomicBitset& next, F& f, VertexId lo, VertexId hi,
                         bool early_exit) {
  for (VertexId v = lo; v < hi; ++v) {
    if (!f.cond(v)) continue;
    for (VertexId u : g.in_neighbors(v)) {
      if (!frontier.get(u)) continue;
      if (f.update(u, v)) next.set(v);
      if (early_exit && !f.cond(v)) break;
    }
  }
}

/// Applies F over all edges whose source is in `frontier`; returns the
/// next frontier. The traversal direction follows the engine's density
/// heuristic unless forced via `opts.direction`.
template <typename F>
VertexSubset edge_map(const Engine& eng, VertexSubset& frontier, F f,
                      const EdgeMapOptions& opts = {}) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();

  bool pull;
  switch (opts.direction) {
    case Direction::Push: pull = false; break;
    case Direction::Pull: pull = true; break;
    case Direction::Auto: {
      // |frontier| + |out-edges(frontier)| > m/20 -> dense.
      EdgeId work = frontier.size();
      if (frontier.is_dense()) {
        // Dense frontiers are already past the threshold in practice;
        // compute from bits without converting.
        frontier.for_each([&](VertexId v) { work += g.out_degree(v); });
      } else {
        work += detail::frontier_out_edges(g, frontier);
      }
      pull = work > eng.dense_threshold();
      break;
    }
    default: pull = false; break;
  }

  AtomicBitset next(n);
  if (pull) {
    frontier.to_dense();
    const DynamicBitset& fbits = frontier.bits();
    if (eng.partitioned()) {
      // Partition-per-task static scheduling (Polymer/GraphGrind).
      const auto& part = eng.partitioning();
      parallel_for(
          0, part.num_partitions(),
          [&](std::size_t p) {
            edge_map_pull_range(g, fbits, next, f,
                                part.begin(static_cast<VertexId>(p)),
                                part.end(static_cast<VertexId>(p)),
                                opts.pull_early_exit);
          },
          eng.partition_loop());
    } else {
      parallel_for_range(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            edge_map_pull_range(g, fbits, next, f,
                                static_cast<VertexId>(lo),
                                static_cast<VertexId>(hi),
                                opts.pull_early_exit);
          },
          eng.vertex_loop());
    }
    DynamicBitset out(n);
    for (VertexId v = 0; v < n; ++v)
      if (next.get(v)) out.set(v);
    return VertexSubset::from_bitset(std::move(out));
  }

  // Sparse push.
  frontier.to_sparse();
  auto ids = frontier.vertices();
  parallel_for(
      0, ids.size(),
      [&](std::size_t i) {
        const VertexId u = ids[i];
        for (VertexId v : g.out_neighbors(u))
          if (f.cond(v) && f.update_atomic(u, v)) next.set(v);
      },
      eng.vertex_loop());
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v)
    if (next.get(v)) out.push_back(v);
  return VertexSubset::from_sparse(n, std::move(out));
}

/// Applies fn(v) to every member of the subset (parallel; fn must be safe
/// to run concurrently on distinct vertices).
template <typename Fn>
void vertex_map(const Engine& eng, const VertexSubset& subset, Fn&& fn) {
  if (subset.is_dense()) {
    const DynamicBitset& bits = subset.bits();
    parallel_for(
        0, subset.universe_size(),
        [&](std::size_t v) {
          if (bits.get(static_cast<VertexId>(v)))
            fn(static_cast<VertexId>(v));
        },
        eng.vertex_loop());
  } else {
    auto ids = subset.vertices();
    parallel_for(
        0, ids.size(), [&](std::size_t i) { fn(ids[i]); },
        eng.vertex_loop());
  }
}

/// Keeps the members where pred(v) is true; returns a sparse subset.
template <typename Pred>
VertexSubset vertex_filter(const Engine& eng, const VertexSubset& subset,
                           Pred&& pred) {
  (void)eng;
  std::vector<VertexId> out;
  subset.for_each([&](VertexId v) {
    if (pred(v)) out.push_back(v);
  });
  return VertexSubset::from_sparse(subset.universe_size(), std::move(out));
}

}  // namespace vebo
