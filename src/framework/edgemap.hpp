// edgemap / vertexmap: the two traversal primitives of Ligra, Polymer and
// GraphGrind (Section IV of the paper).
//
// An edgemap functor F provides (Ligra's interface):
//   bool update(u, v)        — apply edge u->v; single writer per v (pull)
//   bool update_atomic(u, v) — apply edge u->v; concurrent writers (push)
//   bool cond(v)             — should destination v still be processed?
// Both update functions return true iff v became active for the next
// frontier.
//
// Direction reversal: sparse frontiers traverse out-edges of active
// vertices (push); frontiers denser than |E|/20 traverse in-edges of every
// destination satisfying cond (pull). Partitioned engines (Polymer,
// GraphGrind) run the pull phase partition-by-partition under static
// scheduling — the configuration whose load balance VEBO fixes.
//
// The dense (pull) path is flag-driven (Ligra's edgeMap flags, adapted):
//  * kNoOutput — the caller discards the result frontier, so no output
//    bitset is allocated and no per-edge activation is recorded; the step
//    costs exactly its edge traversal.
//  * Complete-frontier specialization — when the input subset provably
//    covers all n vertices (VertexSubset::is_complete()), the kernel is
//    instantiated with CompleteProbe and the per-edge frontier.get(u)
//    load disappears from the inner loop.
//  * Edge-balanced dense scheduling — partitioned engines keep their
//    VEBO/Algorithm-1 partition boundaries; the unpartitioned Ligra model
//    splits the destination range into chunks of ~equal in-edges by
//    binary search into the CSC offsets (Engine::dense_chunks()) instead
//    of vertex chunking, which would reintroduce on the dense path the
//    skew VEBO exists to fix.
//  * Non-atomic output stripes — pull has a single writer per destination
//    and tasks own disjoint destination ranges, so the output bitset is
//    written with plain stores on words wholly inside a task's range and
//    an atomic RMW only on the (at most two) boundary words shared with
//    neighbouring tasks (StripeSink).
// All four combine freely; edge_map_pull_range is the single dense kernel
// every dense traversal in the repo instantiates — the flagged edge_map,
// and via edge_apply the PageRank / PageRank-delta / SpMV / BP dense
// iterations.
//
// Frontier materialization is fully parallel and output-sensitive
// (pbbslib-style scan compaction):
//  * Sparse push: an exclusive scan over frontier out-degrees assigns each
//    source a slot range in an edge-indexed buffer; workers write the
//    destinations they activate (first claim wins via an atomic bitset)
//    compacted at the front of their own range and report the count; a
//    second scan over the counts places each range's activations in the
//    output. The claim bitset is engine-owned scratch, allocated once
//    and cleared incrementally by the output list, so steady-state cost
//    is O(edges(frontier)) — never O(n) — with no serial pass.
//    If the output count is past the density threshold the claim bitset
//    itself becomes the (dense) result and the copy-out is skipped.
//  * Dense pull: the striped output bitset is adopted by the result
//    subset word-for-word (no bit-at-a-time copy).
// The offset scan doubles as the input frontier's out-degree sum, seeding
// the cache VertexSubset::out_edges() keeps for the direction heuristic;
// result frontiers fill that cache lazily on their first heuristic query.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "framework/engine.hpp"
#include "framework/vertex_subset.hpp"
#include "obs/trace.hpp"
#include "parallel/scan_pack.hpp"
#include "support/bitset.hpp"

namespace vebo {

namespace detail {

/// How many disjoint destination ranges the dense scheduler will run —
/// the tracer's "chunks" arg (partition count on partitioned engines,
/// CSC edge-balanced chunk count otherwise).
inline std::uint64_t dense_range_count(const Engine& eng) {
  return eng.partitioned()
             ? static_cast<std::uint64_t>(eng.partitioning().num_partitions())
             : static_cast<std::uint64_t>(eng.dense_chunks().size() - 1);
}

}  // namespace detail

enum class Direction { Auto, Push, Pull };

/// Behavior flags for edge_map (Ligra's edgeMap flag set, adapted).
enum EdgeMapFlags : unsigned {
  kNoFlags = 0,
  /// Pull loop breaks out of a destination's in-edge scan as soon as
  /// cond(v) turns false (Ligra's early exit, e.g. BFS parent setting).
  kPullEarlyExit = 1u << 0,
  /// The caller discards the result frontier: skip output
  /// materialization entirely — no bitset allocation, no per-edge
  /// activation recording, no claim scratch — and return an empty
  /// subset.
  kNoOutput = 1u << 1,
};

struct EdgeMapOptions {
  Direction direction = Direction::Auto;
  unsigned flags = kPullEarlyExit;

  bool early_exit() const { return (flags & kPullEarlyExit) != 0; }
  bool no_output() const { return (flags & kNoOutput) != 0; }
};

// ------------------------------------------------- dense kernel pieces

/// Frontier membership probes for the pull kernel. CompleteProbe is the
/// complete-frontier specialization: every source passes, with no memory
/// access in the inner loop.
struct CompleteProbe {
  bool operator()(VertexId) const { return true; }
};
struct BitsetProbe {
  const DynamicBitset& bits;
  bool operator()(VertexId u) const { return bits.get(u); }
};

/// Output sinks for the pull kernel. NullSink is the kNoOutput path.
struct NullSink {
  void set(VertexId) {}
};
/// Records activations with plain (non-atomic) stores on every bitset
/// word lying wholly inside the task's destination range [lo, hi); only
/// the at-most-two boundary words shared with neighbouring tasks take an
/// atomic RMW. Safe because pull has a single writer per destination and
/// tasks own disjoint ranges: a word is either interior to exactly one
/// task (only that task touches it, plainly) or a boundary word for all
/// its writers (all touch it atomically).
struct StripeSink {
  DynamicBitset& bits;
  std::size_t word_lo, word_hi;  ///< plain stores for words in [lo, hi)

  StripeSink(DynamicBitset& b, VertexId lo, VertexId hi)
      : bits(b),
        word_lo((static_cast<std::size_t>(lo) + 63) / 64),
        word_hi(static_cast<std::size_t>(hi) / 64) {}

  void set(VertexId v) {
    const std::size_t w = static_cast<std::size_t>(v) >> 6;
    if (w >= word_lo && w < word_hi)
      bits.set(v);
    else
      bits.set_atomic(v);
  }
};

/// The one dense (pull) kernel: applies F over the in-edges of every
/// destination in [lo, hi) whose source passes `probe`, reporting
/// activations to `sink`. Every dense traversal in the repo instantiates
/// this template — probe and sink are compile-time choices, so the
/// complete-frontier and no-output variants pay nothing for the
/// flexibility.
template <typename F, typename Probe, typename Sink>
void edge_map_pull_range(const Graph& g, F& f, const Probe& probe,
                         Sink& sink, VertexId lo, VertexId hi,
                         bool early_exit) {
  for (VertexId v = lo; v < hi; ++v) {
    if (!f.cond(v)) continue;
    for (VertexId u : g.in_neighbors(v)) {
      if (!probe(u)) continue;
      if (f.update(u, v)) sink.set(v);
      if (early_exit && !f.cond(v)) break;
    }
  }
}

/// Runs body(lo, hi) over disjoint destination ranges covering [0, n):
/// partition-per-task on partitioned engines (Polymer/GraphGrind keep
/// their VEBO/Algorithm-1 boundaries), edge-balanced CSC chunks on the
/// unpartitioned Ligra model (Engine::dense_chunks()).
template <typename Body>
void for_dense_ranges(const Engine& eng, Body&& body) {
  if (eng.partitioned()) {
    const auto& part = eng.partitioning();
    parallel_for(
        0, part.num_partitions(),
        [&](std::size_t p) {
          body(part.begin(static_cast<VertexId>(p)),
               part.end(static_cast<VertexId>(p)));
        },
        eng.partition_loop());
  } else {
    const std::span<const VertexId> chunks = eng.dense_chunks();
    parallel_for(
        0, chunks.size() - 1,
        [&](std::size_t t) { body(chunks[t], chunks[t + 1]); },
        eng.dense_chunk_loop());
  }
}

namespace detail {

/// Dense driver shared by both probes: schedules the kernel over the
/// engine's dense ranges with the sink the flags select.
template <typename F, typename Probe>
VertexSubset edge_map_pull(const Engine& eng, F& f, const Probe& probe,
                           const EdgeMapOptions& opts) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  if (opts.no_output()) {
    for_dense_ranges(eng, [&](VertexId lo, VertexId hi) {
      NullSink sink;
      edge_map_pull_range(g, f, probe, sink, lo, hi, opts.early_exit());
    });
    return VertexSubset::empty(n);
  }
  DynamicBitset next(n);
  for_dense_ranges(eng, [&](VertexId lo, VertexId hi) {
    StripeSink sink(next, lo, hi);
    edge_map_pull_range(g, f, probe, sink, lo, hi, opts.early_exit());
  });
  // Adopt the striped words directly; the count is word-parallel.
  return VertexSubset::from_bitset(std::move(next), eng.vertex_loop());
}

}  // namespace detail

/// Applies F over all edges whose source is in `frontier`; returns the
/// next frontier (empty under kNoOutput). The traversal direction follows
/// the engine's density heuristic unless forced via `opts.direction`.
template <typename F>
VertexSubset edge_map(const Engine& eng, VertexSubset& frontier, F f,
                      const EdgeMapOptions& opts = {}) {
  // Superstep boundary: the cooperative-cancellation poll point (one
  // pointer test when no context is bound; never polled inside the
  // dense kernels below).
  eng.poll_cancellation();
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  const ForOptions vloop = eng.vertex_loop();
  if (frontier.empty_set()) return VertexSubset::empty(n);

  // Step span: one relaxed load when no trace is armed. Sits at call
  // granularity — the dense kernels below are never polled.
  obs::SpanScope step(obs::SpanKind::EdgeMap);

  // Per-source out-degree offsets for the push path. Filled at most once;
  // when the frontier is already sparse the Auto heuristic fills it and
  // its scan total doubles as the out-degree sum (one degree walk, not
  // two).
  std::vector<std::uint64_t> off;
  std::uint64_t total = 0;
  bool have_offsets = false;
  auto compute_offsets = [&] {
    auto ids = frontier.vertices();
    off.resize(ids.size());
    parallel_for(
        0, ids.size(),
        [&](std::size_t i) { off[i] = g.out_degree(ids[i]); }, vloop);
    total = exclusive_scan(off.data(), off.data(), ids.size(), vloop);
    frontier.set_out_edges(total);
    have_offsets = true;
  };

  bool pull;
  switch (opts.direction) {
    case Direction::Push: pull = false; break;
    case Direction::Pull: pull = true; break;
    case Direction::Auto:
      // A complete frontier is always dense (n + m > m/20); skip the
      // degree walk the heuristic would otherwise pay.
      if (frontier.is_complete()) {
        pull = true;
        break;
      }
      // |frontier| + |out-edges(frontier)| > m/20 -> dense.
      if (!frontier.is_dense()) compute_offsets();
      pull = frontier.size() + frontier.out_edges(g, vloop) >
             eng.dense_threshold();
      break;
    default: pull = false; break;
  }

  if (step.live()) {
    // Record the heuristic's inputs exactly as it saw them: the out-edge
    // sum only when it was actually computed (offset scan, cached value,
    // or the complete-frontier shortcut's |E|) — tracing never forces
    // the degree walk the step itself skipped.
    obs::Span& s = step.span();
    s.a = frontier.size();
    s.b = have_offsets                ? total
          : frontier.is_complete()    ? g.num_edges()
          : frontier.has_out_edges()  ? frontier.out_edges(g, vloop)
                                      : obs::kUnknownArg;
    s.c = eng.dense_threshold();
    s.direction = pull ? 2 : 1;
    s.flags = static_cast<std::uint8_t>((opts.early_exit() ? 1 : 0) |
                                        (opts.no_output() ? 2 : 0));
    if (pull) {
      s.rep = frontier.is_complete() ? 3 : 2;
      s.variant = frontier.is_complete() ? obs::KernelVariant::Complete
                                         : obs::KernelVariant::Probe;
      s.d = detail::dense_range_count(eng);
      step.predict(static_cast<double>(g.num_edges()),
                   static_cast<double>(n),
                   static_cast<double>(frontier.size()));
    } else {
      s.rep = 1;
      s.d = 0;
      if (s.b != obs::kUnknownArg)
        step.predict(static_cast<double>(s.b), 0,
                     static_cast<double>(frontier.size()));
    }
  }

  if (pull) {
    if (frontier.is_complete())
      return detail::edge_map_pull(eng, f, CompleteProbe{}, opts);
    frontier.to_dense(vloop);
    return detail::edge_map_pull(eng, f, BitsetProbe{frontier.bits()},
                                 opts);
  }

  frontier.to_sparse(vloop);
  auto ids = frontier.vertices();
  const std::size_t fsz = ids.size();

  if (opts.no_output()) {
    // Push with the output discarded: deliver the edges, skip the claim
    // bitset, slot buffer and both scans entirely. Touches no
    // engine-owned scratch, so no lease either.
    parallel_for(
        0, fsz,
        [&](std::size_t i) {
          const VertexId u = ids[i];
          for (const VertexId v : g.out_neighbors(u))
            if (f.cond(v)) f.update_atomic(u, v);
        },
        vloop);
    return VertexSubset::empty(n);
  }

  // Sparse push, scan-compacted: slot ranges from the offset scan, then
  // a count scan places each range's activations in the output. No loop
  // below runs over all n vertices and no pass is serial (the slot
  // buffer is deliberately left uninitialized; only written prefixes of
  // each range are read back).
  if (!have_offsets) compute_offsets();
  std::vector<std::uint64_t> cnt(fsz);

  // Engine-owned scratch, reused across calls: the slot buffer grows to
  // the largest out-degree total seen, and the claim bitset arrives
  // all-zero (first borrow allocates) and is handed back all-zero below,
  // so steady-state sparse steps do no n-dependent work. The lease
  // throws if another edge_map already holds the scratch.
  Engine::ScratchLease lease(eng);
  VertexId* const slots = eng.slot_scratch(total);
  AtomicBitset& claimed = eng.claim_scratch();
  if (claimed.size() != static_cast<std::size_t>(n))
    claimed = AtomicBitset(n);
  parallel_for(
      0, fsz,
      [&](std::size_t i) {
        const VertexId u = ids[i];
        VertexId* slot = slots + off[i];
        std::uint64_t c = 0;
        for (const VertexId v : g.out_neighbors(u))
          if (f.cond(v) && f.update_atomic(u, v) && claimed.set(v))
            slot[c++] = v;
        cnt[i] = c;
      },
      vloop);

  std::vector<std::uint64_t> out_off(fsz);
  const std::uint64_t out_total =
      exclusive_scan(cnt.data(), out_off.data(), fsz, vloop);

  if (out_total > eng.dense_vertex_threshold()) {
    // Dense fallback: the claim bitset is exactly the output set, so
    // adopt it and skip materializing the id list entirely. Moving the
    // words out leaves the scratch empty; the next sparse step
    // reallocates it (rare — dense rounds come in runs). The out-degree
    // sum is filled lazily by the next heuristic query.
    return VertexSubset::from_atomic(std::move(claimed),
                                     static_cast<VertexId>(out_total), vloop);
  }
  std::vector<VertexId> out(out_total);
  parallel_for(
      0, fsz,
      [&](std::size_t i) {
        std::copy_n(slots + off[i], cnt[i], out.data() + out_off[i]);
      },
      vloop);
  // Return the scratch all-zero by clearing exactly the bits this step
  // set — O(|out|), not O(n).
  parallel_for(
      0, out.size(), [&](std::size_t i) { claimed.clear(out[i]); }, vloop);
  return VertexSubset::from_packed(n, std::move(out), /*sorted=*/false);
}

// ------------------------------------------------------------ edge_apply

namespace detail {

/// Adapts a plain per-edge functor to the pull kernel's Ligra interface:
/// unconditional cond, activation-free update. The kernel inlines to the
/// bare accumulation loop.
template <typename EdgeFn>
struct EdgeApplyFunctor {
  EdgeFn& fn;
  bool update(VertexId u, VertexId v) {
    fn(u, v);
    return false;
  }
  bool update_atomic(VertexId u, VertexId v) {
    fn(u, v);
    return false;
  }
  bool cond(VertexId) const { return true; }
};

}  // namespace detail

/// Dense per-edge apply (pull direction): fn(u, v) for every in-edge
/// (u, v) of every destination — no frontier probe, no activation
/// tracking, no output frontier. This is the kernel PageRank/SpMV/BP-
/// style dense iterations need. Tasks own disjoint destination ranges
/// (one writer per destination), so fn may update per-destination state
/// non-atomically; within one destination, sources arrive in ascending
/// id order, so accumulation order — and therefore floating-point
/// results — is independent of thread count, chunking and system model.
template <typename EdgeFn>
void edge_apply(const Engine& eng, EdgeFn&& fn) {
  eng.poll_cancellation();  // superstep boundary (see edge_map)
  const Graph& g = eng.graph();
  obs::SpanScope step(obs::SpanKind::EdgeApply);
  if (step.live()) {
    obs::Span& s = step.span();
    s.a = g.num_vertices();
    s.b = g.num_edges();
    s.c = eng.dense_threshold();
    s.d = detail::dense_range_count(eng);
    s.direction = 2;
    s.rep = 3;
    s.variant = obs::KernelVariant::Complete;
    s.flags = 2;  // no output frontier by construction
    step.predict(static_cast<double>(g.num_edges()),
                 static_cast<double>(g.num_vertices()),
                 static_cast<double>(g.num_vertices()));
  }
  detail::EdgeApplyFunctor<EdgeFn> f{fn};
  const CompleteProbe probe;
  for_dense_ranges(eng, [&](VertexId lo, VertexId hi) {
    NullSink sink;
    edge_map_pull_range(g, f, probe, sink, lo, hi, /*early_exit=*/false);
  });
}

/// Frontier-restricted overload: only edges whose source is in
/// `frontier` are delivered. A complete frontier dispatches to the
/// probe-free kernel above (PageRank-delta's early rounds).
template <typename EdgeFn>
void edge_apply(const Engine& eng, VertexSubset& frontier, EdgeFn&& fn) {
  eng.poll_cancellation();  // superstep boundary (see edge_map)
  if (frontier.empty_set()) return;
  if (frontier.is_complete()) {
    // The probe-free overload records its own (Complete-variant) span.
    edge_apply(eng, std::forward<EdgeFn>(fn));
    return;
  }
  const Graph& g = eng.graph();
  obs::SpanScope step(obs::SpanKind::EdgeApply);
  if (step.live()) {
    obs::Span& s = step.span();
    s.a = frontier.size();
    s.b = frontier.has_out_edges()
              ? frontier.out_edges(g, eng.vertex_loop())
              : obs::kUnknownArg;
    s.c = eng.dense_threshold();
    s.d = detail::dense_range_count(eng);
    s.direction = 2;
    s.rep = 2;
    s.variant = obs::KernelVariant::Probe;
    s.flags = 2;
    step.predict(static_cast<double>(g.num_edges()),
                 static_cast<double>(g.num_vertices()),
                 static_cast<double>(frontier.size()));
  }
  frontier.to_dense(eng.vertex_loop());
  detail::EdgeApplyFunctor<EdgeFn> f{fn};
  const BitsetProbe probe{frontier.bits()};
  for_dense_ranges(eng, [&](VertexId lo, VertexId hi) {
    NullSink sink;
    edge_map_pull_range(g, f, probe, sink, lo, hi, /*early_exit=*/false);
  });
}

// ------------------------------------------------------------- edge_fold

namespace detail {

/// Fold kernel shared by both edge_fold overloads: per destination, a
/// register accumulator folded over the in-neighbors that pass `probe`,
/// committed once. Same probe concept and dense scheduling as the
/// update-style kernel.
template <typename T, typename Probe, typename Value, typename Commit>
void edge_fold_ranges(const Engine& eng, const Probe& probe, Value& value,
                      Commit& commit) {
  const Graph& g = eng.graph();
  for_dense_ranges(eng, [&](VertexId lo, VertexId hi) {
    for (VertexId v = lo; v < hi; ++v) {
      T acc{};
      for (VertexId u : g.in_neighbors(v))
        if (probe(u)) acc += value(u, v);
      commit(v, acc);
    }
  });
}

}  // namespace detail

/// Register-accumulating per-destination gather (pull direction): for
/// every destination v, folds value(u, v) over v's in-neighbors into a
/// local accumulator and calls commit(v, acc) exactly once — including
/// acc == T{} for in-degree-0 destinations, so no separate zero-fill
/// pass is needed. This is the fold form of edge_apply: the accumulator
/// provably lives in a register across a destination's whole in-edge
/// scan, which the per-edge-functor form cannot promise (the destination
/// array and the source array may alias, forcing a load + store per
/// edge). PageRank / SpMV / BP-style dense iterations run on this form;
/// accumulation order is the ascending in-neighbor order, independent of
/// thread count, chunking and system model.
namespace detail {

/// Fills an EdgeFold span's args; shared by both overloads. `fsize` is
/// the contributing-source count (n for the probe-free kernel).
inline void fill_fold_span(obs::SpanScope& step, const Engine& eng,
                           std::uint64_t fsize, std::uint64_t fedges,
                           bool complete) {
  if (!step.live()) return;
  const Graph& g = eng.graph();
  obs::Span& s = step.span();
  s.a = fsize;
  s.b = fedges;
  s.c = eng.dense_threshold();
  s.d = dense_range_count(eng);
  s.direction = 2;
  s.rep = complete ? 3 : 2;
  s.variant = obs::KernelVariant::Fold;
  s.flags = 2;  // fold commits per destination; no output frontier
  step.predict(static_cast<double>(g.num_edges()),
               static_cast<double>(g.num_vertices()),
               static_cast<double>(fsize));
}

}  // namespace detail

template <typename T, typename Value, typename Commit>
void edge_fold(const Engine& eng, Value&& value, Commit&& commit) {
  eng.poll_cancellation();  // superstep boundary (see edge_map)
  obs::SpanScope step(obs::SpanKind::EdgeFold);
  detail::fill_fold_span(step, eng, eng.graph().num_vertices(),
                         eng.graph().num_edges(), /*complete=*/true);
  detail::edge_fold_ranges<T>(eng, CompleteProbe{}, value, commit);
}

/// Frontier-restricted overload: only in-neighbors in `frontier`
/// contribute; commit still runs for every destination. A complete
/// frontier dispatches to the probe-free kernel.
template <typename T, typename Value, typename Commit>
void edge_fold(const Engine& eng, VertexSubset& frontier, Value&& value,
               Commit&& commit) {
  eng.poll_cancellation();  // superstep boundary (see edge_map)
  obs::SpanScope step(obs::SpanKind::EdgeFold);
  if (frontier.is_complete()) {
    detail::fill_fold_span(step, eng, eng.graph().num_vertices(),
                           eng.graph().num_edges(), /*complete=*/true);
    detail::edge_fold_ranges<T>(eng, CompleteProbe{}, value, commit);
    return;
  }
  detail::fill_fold_span(
      step, eng, frontier.size(),
      frontier.has_out_edges()
          ? frontier.out_edges(eng.graph(), eng.vertex_loop())
          : obs::kUnknownArg,
      /*complete=*/false);
  frontier.to_dense(eng.vertex_loop());
  detail::edge_fold_ranges<T>(eng, BitsetProbe{frontier.bits()}, value,
                              commit);
}

// ------------------------------------------------- vertex_map / filter

/// Applies fn(v) to every member of the subset (parallel; fn must be safe
/// to run concurrently on distinct vertices).
template <typename Fn>
void vertex_map(const Engine& eng, const VertexSubset& subset, Fn&& fn) {
  if (subset.has_sparse()) {
    auto ids = subset.vertices();
    parallel_for(
        0, ids.size(), [&](std::size_t i) { fn(ids[i]); },
        eng.vertex_loop());
  } else {
    // Word-parallel dense walk: zero words cost one test, not 64.
    const DynamicBitset& bits = subset.bits();
    parallel_for(
        0, bits.num_words(),
        [&](std::size_t w) {
          detail::for_each_set_bit(bits.word(w), w * 64, [&](std::size_t i) {
            fn(static_cast<VertexId>(i));
          });
        },
        eng.vertex_loop());
  }
}

/// Keeps the members where pred(v) is true; returns a sparse subset
/// (scan-compacted, parallel).
template <typename Pred>
VertexSubset vertex_filter(const Engine& eng, const VertexSubset& subset,
                           Pred&& pred) {
  const ForOptions vloop = eng.vertex_loop();
  const VertexId n = subset.universe_size();
  if (subset.has_sparse()) {
    auto ids = subset.vertices();
    auto out = pack_map<VertexId>(
        ids.size(), [&](std::size_t i) { return pred(ids[i]); },
        [&](std::size_t i) { return ids[i]; }, vloop);
    return VertexSubset::from_packed(n, std::move(out),
                                     subset.sparse_sorted());
  }
  // Word-parallel dense filter (mirrors vertex_map's dense walk): the
  // predicate runs only on set bits, and zero words cost one test
  // instead of 64 membership probes.
  const DynamicBitset& bits = subset.bits();
  auto out = detail::words_to_sparse_if<VertexId>(
      bits.num_words(), [&](std::size_t w) { return bits.word(w); },
      [&](std::size_t i) { return pred(static_cast<VertexId>(i)); }, vloop);
  return VertexSubset::from_packed(n, std::move(out), /*sorted=*/true);
}

}  // namespace vebo
