// edgemap / vertexmap: the two traversal primitives of Ligra, Polymer and
// GraphGrind (Section IV of the paper).
//
// An edgemap functor F provides (Ligra's interface):
//   bool update(u, v)        — apply edge u->v; single writer per v (pull)
//   bool update_atomic(u, v) — apply edge u->v; concurrent writers (push)
//   bool cond(v)             — should destination v still be processed?
// Both update functions return true iff v became active for the next
// frontier.
//
// Direction reversal: sparse frontiers traverse out-edges of active
// vertices (push); frontiers denser than |E|/20 traverse in-edges of every
// destination satisfying cond (pull). Partitioned engines (Polymer,
// GraphGrind) run the pull phase partition-by-partition under static
// scheduling — the configuration whose load balance VEBO fixes.
//
// Frontier materialization is fully parallel and output-sensitive
// (pbbslib-style scan compaction):
//  * Sparse push: an exclusive scan over frontier out-degrees assigns each
//    source a slot range in an edge-indexed buffer; workers write the
//    destinations they activate (first claim wins via an atomic bitset)
//    compacted at the front of their own range and report the count; a
//    second scan over the counts places each range's activations in the
//    output. The claim bitset is engine-owned scratch, allocated once
//    and cleared incrementally by the output list, so steady-state cost
//    is O(edges(frontier)) — never O(n) — with no serial pass.
//    If the output count is past the density threshold the claim bitset
//    itself becomes the (dense) result and the copy-out is skipped.
//  * Dense pull: the atomic destination bitset is adopted by the result
//    subset word-for-word (no bit-at-a-time copy).
// The offset scan doubles as the input frontier's out-degree sum, seeding
// the cache VertexSubset::out_edges() keeps for the direction heuristic;
// result frontiers fill that cache lazily on their first heuristic query.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "framework/engine.hpp"
#include "framework/vertex_subset.hpp"
#include "parallel/scan_pack.hpp"
#include "support/bitset.hpp"

namespace vebo {

enum class Direction { Auto, Push, Pull };

struct EdgeMapOptions {
  Direction direction = Direction::Auto;
  /// Pull loop breaks out of a destination's in-edge scan as soon as
  /// cond(v) turns false (Ligra's early exit, e.g. BFS parent setting).
  bool pull_early_exit = true;
};

/// Dense (pull) edgemap over destination range [lo, hi).
template <typename F>
void edge_map_pull_range(const Graph& g, const DynamicBitset& frontier,
                         AtomicBitset& next, F& f, VertexId lo, VertexId hi,
                         bool early_exit) {
  for (VertexId v = lo; v < hi; ++v) {
    if (!f.cond(v)) continue;
    for (VertexId u : g.in_neighbors(v)) {
      if (!frontier.get(u)) continue;
      if (f.update(u, v)) next.set(v);
      if (early_exit && !f.cond(v)) break;
    }
  }
}

/// Applies F over all edges whose source is in `frontier`; returns the
/// next frontier. The traversal direction follows the engine's density
/// heuristic unless forced via `opts.direction`.
template <typename F>
VertexSubset edge_map(const Engine& eng, VertexSubset& frontier, F f,
                      const EdgeMapOptions& opts = {}) {
  const Graph& g = eng.graph();
  const VertexId n = g.num_vertices();
  const ForOptions vloop = eng.vertex_loop();
  if (frontier.empty_set()) return VertexSubset::empty(n);

  // Per-source out-degree offsets for the push path. Filled at most once;
  // when the frontier is already sparse the Auto heuristic fills it and
  // its scan total doubles as the out-degree sum (one degree walk, not
  // two).
  std::vector<std::uint64_t> off;
  std::uint64_t total = 0;
  bool have_offsets = false;
  auto compute_offsets = [&] {
    auto ids = frontier.vertices();
    off.resize(ids.size());
    parallel_for(
        0, ids.size(),
        [&](std::size_t i) { off[i] = g.out_degree(ids[i]); }, vloop);
    total = exclusive_scan(off.data(), off.data(), ids.size(), vloop);
    frontier.set_out_edges(total);
    have_offsets = true;
  };

  bool pull;
  switch (opts.direction) {
    case Direction::Push: pull = false; break;
    case Direction::Pull: pull = true; break;
    case Direction::Auto:
      // |frontier| + |out-edges(frontier)| > m/20 -> dense.
      if (!frontier.is_dense()) compute_offsets();
      pull = frontier.size() + frontier.out_edges(g, vloop) >
             eng.dense_threshold();
      break;
    default: pull = false; break;
  }

  if (pull) {
    frontier.to_dense(vloop);
    const DynamicBitset& fbits = frontier.bits();
    AtomicBitset next(n);
    if (eng.partitioned()) {
      // Partition-per-task static scheduling (Polymer/GraphGrind).
      const auto& part = eng.partitioning();
      parallel_for(
          0, part.num_partitions(),
          [&](std::size_t p) {
            edge_map_pull_range(g, fbits, next, f,
                                part.begin(static_cast<VertexId>(p)),
                                part.end(static_cast<VertexId>(p)),
                                opts.pull_early_exit);
          },
          eng.partition_loop());
    } else {
      parallel_for_range(
          0, n,
          [&](std::size_t lo, std::size_t hi) {
            edge_map_pull_range(g, fbits, next, f,
                                static_cast<VertexId>(lo),
                                static_cast<VertexId>(hi),
                                opts.pull_early_exit);
          },
          vloop);
    }
    return VertexSubset::from_atomic(std::move(next), kInvalidVertex, vloop);
  }

  // Sparse push, scan-compacted: slot ranges from the offset scan, then
  // a count scan places each range's activations in the output. No loop
  // below runs over all n vertices and no pass is serial (the slot
  // buffer is deliberately left uninitialized; only written prefixes of
  // each range are read back).
  frontier.to_sparse(vloop);
  auto ids = frontier.vertices();
  const std::size_t fsz = ids.size();
  if (!have_offsets) compute_offsets();
  std::vector<std::uint64_t> cnt(fsz);

  // Engine-owned scratch, reused across calls: the slot buffer grows to
  // the largest out-degree total seen, and the claim bitset arrives
  // all-zero (first borrow allocates) and is handed back all-zero below,
  // so steady-state sparse steps do no n-dependent work. The lease
  // throws if another edge_map already holds the scratch.
  Engine::ScratchLease lease(eng);
  VertexId* const slots = eng.slot_scratch(total);
  AtomicBitset& claimed = eng.claim_scratch();
  if (claimed.size() != static_cast<std::size_t>(n))
    claimed = AtomicBitset(n);
  parallel_for(
      0, fsz,
      [&](std::size_t i) {
        const VertexId u = ids[i];
        VertexId* slot = slots + off[i];
        std::uint64_t c = 0;
        for (const VertexId v : g.out_neighbors(u))
          if (f.cond(v) && f.update_atomic(u, v) && claimed.set(v))
            slot[c++] = v;
        cnt[i] = c;
      },
      vloop);

  std::vector<std::uint64_t> out_off(fsz);
  const std::uint64_t out_total =
      exclusive_scan(cnt.data(), out_off.data(), fsz, vloop);

  if (out_total > eng.dense_vertex_threshold()) {
    // Dense fallback: the claim bitset is exactly the output set, so
    // adopt it and skip materializing the id list entirely. Moving the
    // words out leaves the scratch empty; the next sparse step
    // reallocates it (rare — dense rounds come in runs). The out-degree
    // sum is filled lazily by the next heuristic query.
    return VertexSubset::from_atomic(std::move(claimed),
                                     static_cast<VertexId>(out_total), vloop);
  }
  std::vector<VertexId> out(out_total);
  parallel_for(
      0, fsz,
      [&](std::size_t i) {
        std::copy_n(slots + off[i], cnt[i], out.data() + out_off[i]);
      },
      vloop);
  // Return the scratch all-zero by clearing exactly the bits this step
  // set — O(|out|), not O(n).
  parallel_for(
      0, out.size(), [&](std::size_t i) { claimed.clear(out[i]); }, vloop);
  return VertexSubset::from_packed(n, std::move(out), /*sorted=*/false);
}

/// Applies fn(v) to every member of the subset (parallel; fn must be safe
/// to run concurrently on distinct vertices).
template <typename Fn>
void vertex_map(const Engine& eng, const VertexSubset& subset, Fn&& fn) {
  if (subset.has_sparse()) {
    auto ids = subset.vertices();
    parallel_for(
        0, ids.size(), [&](std::size_t i) { fn(ids[i]); },
        eng.vertex_loop());
  } else {
    // Word-parallel dense walk: zero words cost one test, not 64.
    const DynamicBitset& bits = subset.bits();
    parallel_for(
        0, bits.num_words(),
        [&](std::size_t w) {
          detail::for_each_set_bit(bits.word(w), w * 64, [&](std::size_t i) {
            fn(static_cast<VertexId>(i));
          });
        },
        eng.vertex_loop());
  }
}

/// Keeps the members where pred(v) is true; returns a sparse subset
/// (scan-compacted, parallel).
template <typename Pred>
VertexSubset vertex_filter(const Engine& eng, const VertexSubset& subset,
                           Pred&& pred) {
  const ForOptions vloop = eng.vertex_loop();
  const VertexId n = subset.universe_size();
  if (subset.has_sparse()) {
    auto ids = subset.vertices();
    auto out = pack_map<VertexId>(
        ids.size(), [&](std::size_t i) { return pred(ids[i]); },
        [&](std::size_t i) { return ids[i]; }, vloop);
    return VertexSubset::from_packed(n, std::move(out),
                                     subset.sparse_sorted());
  }
  const DynamicBitset& bits = subset.bits();
  auto out = pack_map<VertexId>(
      n,
      [&](std::size_t v) { return bits.get(v) && pred(static_cast<VertexId>(v)); },
      [&](std::size_t v) { return static_cast<VertexId>(v); }, vloop);
  return VertexSubset::from_packed(n, std::move(out), /*sorted=*/true);
}

}  // namespace vebo
