#include "framework/vertex_subset.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo {

VertexSubset VertexSubset::empty(VertexId n) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = false;
  return s;
}

VertexSubset VertexSubset::single(VertexId n, VertexId v) {
  VEBO_CHECK(v < n, "vertex out of range");
  VertexSubset s = empty(n);
  s.sparse_.push_back(v);
  s.size_ = 1;
  return s;
}

VertexSubset VertexSubset::all(VertexId n) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = true;
  s.bits_ = DynamicBitset(n, true);
  s.size_ = n;
  return s;
}

VertexSubset VertexSubset::from_sparse(VertexId n,
                                       std::vector<VertexId> ids) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = false;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (VertexId v : ids) VEBO_CHECK(v < n, "vertex out of range");
  s.size_ = static_cast<VertexId>(ids.size());
  s.sparse_ = std::move(ids);
  return s;
}

VertexSubset VertexSubset::from_bitset(DynamicBitset bits) {
  VertexSubset s;
  s.n_ = static_cast<VertexId>(bits.size());
  s.dense_ = true;
  s.size_ = static_cast<VertexId>(bits.count());
  s.bits_ = std::move(bits);
  return s;
}

bool VertexSubset::contains(VertexId v) const {
  if (dense_) return bits_.get(v);
  return std::binary_search(sparse_.begin(), sparse_.end(), v);
}

void VertexSubset::to_dense() {
  if (dense_) return;
  bits_ = DynamicBitset(n_);
  for (VertexId v : sparse_) bits_.set(v);
  sparse_.clear();
  sparse_.shrink_to_fit();
  dense_ = true;
}

void VertexSubset::to_sparse() {
  if (!dense_) return;
  sparse_.clear();
  sparse_.reserve(size_);
  for (VertexId v = 0; v < n_; ++v)
    if (bits_.get(v)) sparse_.push_back(v);
  bits_ = DynamicBitset();
  dense_ = false;
}

std::span<const VertexId> VertexSubset::vertices() const {
  VEBO_CHECK(!dense_, "vertices() requires sparse representation");
  return sparse_;
}

const DynamicBitset& VertexSubset::bits() const {
  VEBO_CHECK(dense_, "bits() requires dense representation");
  return bits_;
}

}  // namespace vebo
