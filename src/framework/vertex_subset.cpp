#include "framework/vertex_subset.hpp"

#include <algorithm>

#include "graph/graph.hpp"
#include "parallel/parallel_for.hpp"
#include "support/error.hpp"

namespace vebo {

VertexSubset VertexSubset::empty(VertexId n) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = false;
  return s;
}

VertexSubset VertexSubset::single(VertexId n, VertexId v) {
  VEBO_CHECK(v < n, "vertex out of range");
  VertexSubset s = empty(n);
  s.sparse_.push_back(v);
  s.size_ = 1;
  return s;
}

VertexSubset VertexSubset::all(VertexId n) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = true;
  s.have_sparse_ = false;
  s.have_dense_ = true;
  s.bits_ = DynamicBitset(n, true);
  s.size_ = n;
  return s;
}

VertexSubset VertexSubset::from_sparse(VertexId n,
                                       std::vector<VertexId> ids) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = false;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (VertexId v : ids) VEBO_CHECK(v < n, "vertex out of range");
  s.size_ = static_cast<VertexId>(ids.size());
  s.sparse_ = std::move(ids);
  return s;
}

VertexSubset VertexSubset::from_packed(VertexId n, std::vector<VertexId> ids,
                                       bool sorted) {
  VertexSubset s;
  s.n_ = n;
  s.dense_ = false;
  s.sparse_sorted_ = sorted;
  s.size_ = static_cast<VertexId>(ids.size());
  s.sparse_ = std::move(ids);
  return s;
}

VertexSubset VertexSubset::from_bitset(DynamicBitset bits,
                                       const ForOptions& opts) {
  VertexSubset s;
  s.n_ = static_cast<VertexId>(bits.size());
  s.dense_ = true;
  s.have_sparse_ = false;
  s.have_dense_ = true;
  s.size_ = static_cast<VertexId>(bits.count_parallel(opts));
  s.bits_ = std::move(bits);
  return s;
}

VertexSubset VertexSubset::from_atomic(AtomicBitset&& bits,
                                       VertexId size_hint,
                                       const ForOptions& opts) {
  const std::size_t n = bits.size();
  DynamicBitset adopted(n, std::move(bits).take_words());
  VertexSubset s;
  s.n_ = static_cast<VertexId>(n);
  s.dense_ = true;
  s.have_sparse_ = false;
  s.have_dense_ = true;
  s.size_ = size_hint != kInvalidVertex
                ? size_hint
                : static_cast<VertexId>(adopted.count_parallel(opts));
  s.bits_ = std::move(adopted);
  return s;
}

bool VertexSubset::contains(VertexId v) const {
  if (have_dense_) return bits_.get(v);
  if (sparse_sorted_)
    return std::binary_search(sparse_.begin(), sparse_.end(), v);
  return std::find(sparse_.begin(), sparse_.end(), v) != sparse_.end();
}

void VertexSubset::to_dense(const ForOptions& opts) {
  if (have_dense_) {
    dense_ = true;
    return;
  }
  if (bits_.size() != n_)
    bits_ = DynamicBitset(n_);
  else
    bits_.reset();
  parallel_for(
      0, sparse_.size(),
      [&](std::size_t i) { bits_.set_atomic(sparse_[i]); }, opts);
  have_dense_ = true;
  dense_ = true;
}

void VertexSubset::to_sparse(const ForOptions& opts) {
  if (have_sparse_) {
    dense_ = false;
    return;
  }
  sparse_ = bits_.to_sparse_parallel<VertexId>(opts);
  sparse_sorted_ = true;
  have_sparse_ = true;
  dense_ = false;
}

std::span<const VertexId> VertexSubset::vertices() const {
  VEBO_CHECK(have_sparse_, "vertices() requires a sparse representation");
  return sparse_;
}

const DynamicBitset& VertexSubset::bits() const {
  VEBO_CHECK(have_dense_, "bits() requires a dense representation");
  return bits_;
}

namespace {

/// Sum of degree(v) over the subset's members, dispatching on whichever
/// representation is available (sparse id walk or dense word walk).
template <typename DegreeFn>
EdgeId member_degree_sum(const std::vector<VertexId>& sparse, bool use_sparse,
                         const DynamicBitset& bits, DegreeFn&& degree,
                         const ForOptions& opts) {
  if (use_sparse) {
    return parallel_reduce<EdgeId>(
        0, sparse.size(), 0,
        [&](std::size_t i) { return degree(sparse[i]); },
        [](EdgeId a, EdgeId b) { return a + b; }, opts);
  }
  return parallel_reduce<EdgeId>(
      0, bits.num_words(), 0,
      [&](std::size_t w) {
        EdgeId s = 0;
        detail::for_each_set_bit(bits.word(w), w * 64, [&](std::size_t i) {
          s += degree(static_cast<VertexId>(i));
        });
        return s;
      },
      [](EdgeId a, EdgeId b) { return a + b; }, opts);
}

}  // namespace

EdgeId VertexSubset::out_edges(const Graph& g, const ForOptions& opts) const {
  if (out_edges_ == kInvalidEdgeCount)
    out_edges_ = member_degree_sum(
        sparse_, have_sparse_, bits_,
        [&](VertexId v) { return g.out_degree(v); }, opts);
  return out_edges_;
}

EdgeId VertexSubset::in_edges(const Graph& g, const ForOptions& opts) const {
  if (in_edges_ == kInvalidEdgeCount)
    in_edges_ = member_degree_sum(
        sparse_, have_sparse_, bits_,
        [&](VertexId v) { return g.in_degree(v); }, opts);
  return in_edges_;
}

}  // namespace vebo
