#include "framework/coo_iter.hpp"

#include <algorithm>

#include "order/hilbert.hpp"
#include "support/error.hpp"

namespace vebo {

std::string to_string(EdgeOrder o) {
  switch (o) {
    case EdgeOrder::Csr: return "CSR";
    case EdgeOrder::Csc: return "CSC";
    case EdgeOrder::Hilbert: return "Hilbert";
  }
  return "?";
}

PartitionedCoo build_partitioned_coo(const Graph& g,
                                     const order::Partitioning& part,
                                     EdgeOrder order) {
  const std::size_t P = part.num_partitions();
  VEBO_CHECK(P >= 1, "partitioned COO requires at least one partition");
  PartitionedCoo out;
  out.offsets.assign(P + 1, 0);

  // Count edges per destination partition.
  for (const Edge& e : g.coo().edges()) ++out.offsets[part.owner(e.dst) + 1];
  for (std::size_t p = 1; p <= P; ++p) out.offsets[p] += out.offsets[p - 1];

  out.edges.resize(g.coo().edges().size());
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (const Edge& e : g.coo().edges())
    out.edges[cursor[part.owner(e.dst)]++] = e;

  // Order edges within each partition.
  const int k = order::hilbert_order_for(g.num_vertices());
  for (std::size_t p = 0; p < P; ++p) {
    auto lo = out.edges.begin() + static_cast<std::ptrdiff_t>(out.offsets[p]);
    auto hi =
        out.edges.begin() + static_cast<std::ptrdiff_t>(out.offsets[p + 1]);
    switch (order) {
      case EdgeOrder::Csr:
        std::sort(lo, hi);
        break;
      case EdgeOrder::Csc:
        std::sort(lo, hi, [](const Edge& a, const Edge& b) {
          if (a.dst != b.dst) return a.dst < b.dst;
          return a.src < b.src;
        });
        break;
      case EdgeOrder::Hilbert:
        std::sort(lo, hi, [k](const Edge& a, const Edge& b) {
          const auto ha = order::hilbert_index(a.src, a.dst, k);
          const auto hb = order::hilbert_index(b.src, b.dst, k);
          if (ha != hb) return ha < hb;
          return a < b;
        });
        break;
    }
  }
  return out;
}

}  // namespace vebo
