// Cooperative cancellation and deadlines for long-running queries.
//
// A traversal cannot be stopped preemptively without corrupting engine
// scratch, so cancellation is cooperative: the party that wants to stop a
// query sets a flag (CancelSource::cancel()) or lets a deadline lapse,
// and the running query polls a QueryContext at its superstep boundaries
// — every edge_map / edge_apply / edge_fold entry, and the hand-rolled
// iteration loops of the COO algorithm paths. The poll points live
// BETWEEN supersteps, never inside the dense kernels, so a cancelled
// traversal stops within one superstep while the hot loops stay exactly
// as fast as before (an unbound engine pays one pointer test per
// superstep).
//
// Plumbing: the caller that owns the query (serve::GraphService worker,
// StreamSession, AlgorithmSpec::invoke) binds the context to the engine
// for the duration of the run (Engine::bind_query_context); framework
// entry points poll it via Engine::poll_cancellation(). checkpoint()
// throws CancelledError / DeadlineExceededError — both vebo::Error
// subclasses, so legacy catch sites keep working and the serving layer
// can map them onto its typed error codes.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "support/error.hpp"

namespace vebo {

/// Thrown by QueryContext::checkpoint() when the query was cancelled.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Thrown by QueryContext::checkpoint() when the deadline has passed.
class DeadlineExceededError : public Error {
 public:
  explicit DeadlineExceededError(const std::string& what) : Error(what) {}
};

class CancelSource;

/// A cheap, copyable view of one cancellation flag. Default-constructed
/// tokens can never be cancelled; real ones come from CancelSource. Safe
/// to poll from any thread while the source (or any token copy) lives.
class CancelToken {
 public:
  CancelToken() = default;

  bool can_be_cancelled() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> s)
      : state_(std::move(s)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

/// The owning side of a cancellation flag: the client keeps the source,
/// hands token() to the query, and may call cancel() from any thread at
/// any time (idempotent; safe after the query finished).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }
  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// The per-query execution context polled at superstep boundaries: an
/// optional cancellation token plus an optional absolute deadline.
/// Default-constructed contexts are unbounded (checkpoint() is a no-op
/// beyond one branch) — the shape every non-serving caller gets.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  QueryContext& set_cancel_token(CancelToken t) {
    token_ = std::move(t);
    return *this;
  }
  /// Absolute deadline; queries past it fail with DeadlineExceededError
  /// at the next checkpoint (or are shed before running at all — see
  /// serve::GraphService).
  QueryContext& set_deadline(Clock::time_point d) {
    deadline_ = d;
    has_deadline_ = true;
    return *this;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  bool cancelled() const { return token_.cancelled(); }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The superstep poll: throws CancelledError / DeadlineExceededError
  /// when the query should stop, returns otherwise. Cancellation wins
  /// over an expired deadline (the explicit signal is the stronger one).
  void checkpoint() const {
    if (token_.cancelled())
      throw CancelledError("query cancelled (cooperative checkpoint)");
    if (deadline_expired())
      throw DeadlineExceededError("query deadline exceeded mid-run");
  }

  /// Shared unbounded instance for callers with nothing to enforce.
  static const QueryContext& none() {
    static const QueryContext ctx;
    return ctx;
  }

 private:
  CancelToken token_;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace vebo
