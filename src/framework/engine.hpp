// Engine: the execution context binding a graph to one of the paper's
// three system models.
//
//  * SystemModel::Ligra      — no explicit partitioning; vertex loops use
//    dynamic (Cilk-like) scheduling; no locality optimization.
//  * SystemModel::Polymer    — Algorithm-1 partitioning with one partition
//    per simulated NUMA node (default 4); static scheduling, so a loop's
//    completion time is the slowest partition's time.
//  * SystemModel::GraphGrind — heavy over-partitioning (default 384,
//    the paper's recommendation); static outer scheduling over partitions
//    with dynamic distribution inside a simulated socket; dense COO
//    traversal in Hilbert or CSR edge order.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "framework/cancel.hpp"
#include "framework/coo_iter.hpp"
#include "graph/graph.hpp"
#include "order/partition.hpp"
#include "parallel/parallel_for.hpp"
#include "support/annotated_mutex.hpp"
#include "support/bitset.hpp"

namespace vebo {

enum class SystemModel { Ligra, Polymer, GraphGrind };

std::string to_string(SystemModel m);

struct EngineOptions {
  /// Number of partitions; 0 = model default (Ligra: none, Polymer: 4,
  /// GraphGrind: 384).
  VertexId partitions = 0;
  /// Explicit destination partitioning (e.g. VEBO's own boundaries).
  /// When set it overrides `partitions`; otherwise Algorithm 1 derives
  /// the chunks. Copied into the engine.
  const order::Partitioning* explicit_partitioning = nullptr;
  /// Edge order for the GraphGrind COO path.
  EdgeOrder edge_order = EdgeOrder::Csr;
  /// Frontier density denominator: dense traversal when
  /// |active| + |active out-edges| > m / dense_denominator (Ligra's 20).
  EdgeId dense_denominator = 20;
  /// Thread pool override (nullptr = global pool).
  ThreadPool* pool = nullptr;
};

// Thread-safety: the read-only surface (graph(), partitioning(),
// vertex_loop(), thresholds, partitioned_coo()) is safe to call from
// multiple threads on one engine; the lazy COO build is synchronized.
// edge_map scratch stays single-caller (ScratchLease throws on a second
// concurrent borrower) — concurrent queries need one engine each, which
// is what serve::EnginePool provides. rebind() requires quiescence: no
// concurrent edge_map and no concurrent partitioned_coo().
class Engine {
 public:
  Engine(const Graph& g, SystemModel model, EngineOptions opts = {});

  const Graph& graph() const { return *graph_; }
  SystemModel model() const { return model_; }
  const EngineOptions& options() const { return opts_; }

  /// Rebinds the engine to a new version of the graph (a streaming
  /// snapshot) without discarding the reusable edge_map scratch (the claim
  /// bitset self-heals on vertex-count changes and the slot buffer is
  /// grow-only, so the PR-1 frontier invariants carry over). Pass the
  /// partitioning maintained for the new version — or nullptr to re-derive
  /// the engine's default partitioning for the model.
  void rebind(const Graph& g, const order::Partitioning* part = nullptr);

  bool partitioned() const { return partitions_ > 0; }
  VertexId num_partitions() const { return partitions_; }
  const order::Partitioning& partitioning() const { return part_; }

  /// Scheduling for loops over vertices/destinations, per system model.
  ForOptions vertex_loop() const;
  /// Scheduling for loops over partitions (static in Polymer/GraphGrind).
  ForOptions partition_loop() const;

  /// Destination-range boundaries for edge-balanced dense (pull)
  /// scheduling on the unpartitioned Ligra model: chunk t owns
  /// destinations [b[t], b[t+1]) carrying an approximately equal share of
  /// in-edges (destination count included in the measure so edgeless id
  /// stretches still split). Built lazily by binary search into the CSC
  /// offset array; safe to call concurrently; reset by rebind().
  std::span<const VertexId> dense_chunks() const;
  /// Scheduling for loops over dense_chunks() (dynamic, chunk-per-task).
  ForOptions dense_chunk_loop() const;

  /// Frontier size threshold above which edgemap switches to the dense
  /// (pull) traversal.
  EdgeId dense_threshold() const {
    return graph_->num_edges() / opts_.dense_denominator;
  }

  /// Output-size threshold above which a sparse push step returns its
  /// result in the dense (bitset) representation.
  VertexId dense_vertex_threshold() const {
    return static_cast<VertexId>(graph_->num_vertices() /
                                 opts_.dense_denominator);
  }

  /// Lazily built partitioned COO in the engine's edge order (GraphGrind
  /// dense path; available for all models for benchmarking). Safe to call
  /// concurrently: the first caller builds under a lock, later callers
  /// take the acquire-published result lock-free.
  const PartitionedCoo& partitioned_coo() const;

  /// Forces the lazily built traversal structures (dense chunk bounds,
  /// and the partitioned COO on partitioned models) to exist NOW, on the
  /// caller's thread — the publish-time pre-warm hook. Without it the
  /// first dense query after a rebind pays the builds inside its own
  /// latency. Both builds are internally synchronized (see above), so
  /// this is safe to run while readers query.
  void prewarm() const {
    dense_chunks();
    if (partitioned()) partitioned_coo();
  }

  /// Reusable claim bitset for the sparse push path. edge_map borrows it
  /// and returns it all-zero (clearing only the bits it set), so steady-
  /// state sparse steps do no n-dependent allocation or clearing. Like
  /// the rest of the engine, not safe for concurrent edge_map calls.
  AtomicBitset& claim_scratch() const { return claim_scratch_; }

  /// Grow-only uninitialized slot buffer for the sparse push path (sized
  /// to the frontier's out-degree total), reused across edge_map calls
  /// to avoid a large transient allocation per step.
  VertexId* slot_scratch(std::size_t need) const {
    if (need > slot_capacity_) {
      slot_scratch_.reset(new VertexId[need]);
      slot_capacity_ = need;
    }
    return slot_scratch_.get();
  }

  /// Cooperative-cancellation hook (framework/cancel.hpp): the caller
  /// that owns the running query binds its QueryContext here for the
  /// duration of the run; edge_map / edge_apply / edge_fold poll it at
  /// entry (between supersteps, never inside the dense kernels). Same
  /// single-caller discipline as the edge_map scratch: bind/poll happen
  /// on the query's thread, only the flag inside the token is cross-
  /// thread (atomic). Cleared by rebind() and by ContextBinding.
  void bind_query_context(const QueryContext* ctx) const { qctx_ = ctx; }
  const QueryContext* query_context() const { return qctx_; }
  /// The superstep poll point: throws CancelledError /
  /// DeadlineExceededError when a bound context says stop; one pointer
  /// test when nothing is bound.
  void poll_cancellation() const {
    if (qctx_ != nullptr) qctx_->checkpoint();
  }

  /// RAII binder for the query context above (exception-safe unbind).
  class ContextBinding {
   public:
    ContextBinding(const Engine& eng, const QueryContext& ctx) : eng_(&eng) {
      eng_->bind_query_context(&ctx);
    }
    ~ContextBinding() { eng_->bind_query_context(nullptr); }
    ContextBinding(const ContextBinding&) = delete;
    ContextBinding& operator=(const ContextBinding&) = delete;

   private:
    const Engine* eng_;
  };

  /// RAII borrow token enforcing the single-caller rule on the shared
  /// scratch above: a second concurrent (or reentrant) borrower throws
  /// instead of silently corrupting frontiers.
  class ScratchLease {
   public:
    explicit ScratchLease(const Engine& eng);
    ~ScratchLease() { busy_->store(false, std::memory_order_release); }
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;

   private:
    std::atomic<bool>* busy_;
  };

 private:
  const Graph* graph_;
  SystemModel model_;
  EngineOptions opts_;
  VertexId partitions_ = 0;
  order::Partitioning part_;
  /// Lazy COO, written once under coo_mutex_ then read lock-free after
  /// the acquire load of coo_built_ — the accessors carrying the
  /// post-publication reads (partitioned_coo, rebind) are the sanctioned
  /// NO_THREAD_SAFETY_ANALYSIS carve-outs in engine.cpp; every other
  /// access path stays checked against this GUARDED_BY.
  mutable PartitionedCoo coo_ GUARDED_BY(coo_mutex_);
  /// Release-published by the builder, acquire-loaded on the fast path;
  /// coo_mutex_ serializes the one-time build (double-checked locking).
  mutable std::atomic<bool> coo_built_{false};
  mutable Mutex coo_mutex_;
  /// Lazy edge-balanced chunk boundaries (same publication discipline as
  /// the COO: release-published, acquire-loaded, one-time build; the
  /// dense_chunks() carve-out in engine.cpp holds the lock-free read).
  mutable std::vector<VertexId> dense_chunks_ GUARDED_BY(dense_chunks_mutex_);
  mutable std::atomic<bool> dense_chunks_built_{false};
  mutable Mutex dense_chunks_mutex_;
  mutable AtomicBitset claim_scratch_;  // lazy, see claim_scratch()
  mutable std::unique_ptr<VertexId[]> slot_scratch_;  // see slot_scratch()
  mutable std::size_t slot_capacity_ = 0;
  mutable std::atomic<bool> scratch_busy_{false};  // see ScratchLease
  mutable const QueryContext* qctx_ = nullptr;  // see bind_query_context()
};

}  // namespace vebo
