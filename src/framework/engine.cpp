#include "framework/engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace vebo {

std::string to_string(SystemModel m) {
  switch (m) {
    case SystemModel::Ligra: return "Ligra";
    case SystemModel::Polymer: return "Polymer";
    case SystemModel::GraphGrind: return "GraphGrind";
  }
  return "?";
}

namespace {
VertexId default_partitions(SystemModel m) {
  switch (m) {
    case SystemModel::Ligra: return 0;        // Ligra does not partition
    case SystemModel::Polymer: return 4;      // one per NUMA node (paper)
    case SystemModel::GraphGrind: return 384; // paper's recommendation
  }
  return 0;
}
}  // namespace

Engine::Engine(const Graph& g, SystemModel model, EngineOptions opts)
    : graph_(&g), model_(model), opts_(opts) {
  VEBO_CHECK(opts_.dense_denominator >= 1, "dense_denominator must be >= 1");
  rebind(g, opts_.explicit_partitioning);
}

// Carve-out: rebind's quiescence contract (no concurrent edge_map or
// partitioned_coo) makes its plain resets of the lock-guarded lazy state
// race-free without taking the build mutexes.
void Engine::rebind(const Graph& g,
                    const order::Partitioning* part) NO_THREAD_SAFETY_ANALYSIS {
  VEBO_CHECK(!scratch_busy_.load(std::memory_order_acquire),
             "rebind during an active edge_map");
  graph_ = &g;
  // A context bound by a previous query must not dangle into the next
  // one: rebind happens between queries (quiescence), so clearing here is
  // safe and makes a leaked binding impossible across epoch swaps.
  qctx_ = nullptr;
  // rebind requires quiescence (checked above for edge_map; concurrent
  // partitioned_coo is part of the same contract), so a plain store is
  // enough to reset the lazy COO and dense chunk boundaries.
  coo_ = {};
  coo_built_.store(false, std::memory_order_release);
  dense_chunks_ = {};
  dense_chunks_built_.store(false, std::memory_order_release);
  // Keep options() consistent with the engine's actual partitioning:
  // after a rebind the stored pointer either names the partitioning in
  // use or is cleared.
  opts_.explicit_partitioning = part;
  if (part != nullptr) {
    part_ = *part;
    partitions_ = part_.num_partitions();
    VEBO_CHECK(part_.boundaries.back() == g.num_vertices(),
               "explicit partitioning does not cover the vertex set");
    return;
  }
  partitions_ = opts_.partitions ? opts_.partitions
                                 : default_partitions(model_);
  if (partitions_ > 0) {
    // Never more partitions than vertices.
    partitions_ = std::min<VertexId>(partitions_, g.num_vertices());
    part_ = order::partition_by_destination(g, partitions_);
  }
}

ForOptions Engine::vertex_loop() const {
  ForOptions o;
  o.pool = opts_.pool;
  switch (model_) {
    case SystemModel::Ligra:
      // Cilk-style dynamic scheduling; fine grain to mimic recursive
      // splitting of the iteration range.
      o.schedule = Schedule::Dynamic;
      o.grain = 256;
      break;
    case SystemModel::Polymer:
      o.schedule = Schedule::Static;
      break;
    case SystemModel::GraphGrind:
      // Static binding of partitions to sockets with dynamic distribution
      // inside; for a vertex loop this behaves like guided scheduling.
      o.schedule = Schedule::Guided;
      o.grain = 512;
      break;
  }
  return o;
}

ForOptions Engine::partition_loop() const {
  ForOptions o;
  o.pool = opts_.pool;
  o.schedule =
      model_ == SystemModel::Ligra ? Schedule::Dynamic : Schedule::Static;
  o.grain = 1;
  o.serial_cutoff = 1;
  return o;
}

ForOptions Engine::dense_chunk_loop() const {
  ForOptions o;
  o.pool = opts_.pool;
  o.schedule = Schedule::Dynamic;
  o.grain = 1;
  o.serial_cutoff = 1;
  return o;
}

// Carve-out: documented double-checked locking — the acquire load of
// dense_chunks_built_ publishes dense_chunks_ for the lock-free return.
std::span<const VertexId> Engine::dense_chunks() const
    NO_THREAD_SAFETY_ANALYSIS {
  if (!dense_chunks_built_.load(std::memory_order_acquire)) {
    MutexLock lk(dense_chunks_mutex_);
    if (!dense_chunks_built_.load(std::memory_order_relaxed)) {
      const VertexId n = graph_->num_vertices();
      const std::span<const EdgeId> off = graph_->in_csr().offsets();
      ThreadPool& pool = opts_.pool ? *opts_.pool : ThreadPool::global();
      // Enough chunks for dynamic scheduling to absorb residual skew,
      // few enough that per-chunk overhead stays negligible.
      const VertexId T = static_cast<VertexId>(std::min<std::size_t>(
          std::max<VertexId>(n, 1), pool.num_threads() * 8));
      std::vector<VertexId> b(T + 1);
      b[0] = 0;
      b[T] = n;
      // Work measure w(v) = in_off[v] + v is strictly increasing, so
      // each boundary is a binary search for the first destination at or
      // past an equal share of the total (in-edges + destinations).
      const std::uint64_t total =
          (off.empty() ? 0 : static_cast<std::uint64_t>(off[n])) + n;
      for (VertexId t = 1; t < T; ++t) {
        const std::uint64_t want = total * t / T;
        VertexId lo = 0, hi = n;
        while (lo < hi) {
          const VertexId mid = lo + (hi - lo) / 2;
          if (static_cast<std::uint64_t>(off[mid]) + mid < want)
            lo = mid + 1;
          else
            hi = mid;
        }
        b[t] = lo;
      }
      dense_chunks_ = std::move(b);
      dense_chunks_built_.store(true, std::memory_order_release);
    }
  }
  return dense_chunks_;
}

Engine::ScratchLease::ScratchLease(const Engine& eng)
    : busy_(&eng.scratch_busy_) {
  VEBO_CHECK(!busy_->exchange(true, std::memory_order_acquire),
             "edge_map scratch already in use: concurrent or reentrant "
             "edge_map calls on one Engine are not supported");
}

// Carve-out: documented double-checked locking — the acquire load of
// coo_built_ publishes coo_ for the lock-free return.
const PartitionedCoo& Engine::partitioned_coo() const
    NO_THREAD_SAFETY_ANALYSIS {
  VEBO_CHECK(partitioned(), "partitioned_coo requires a partitioned model");
  // Double-checked lazy build: two threads sharing one engine for
  // read-only traversal must not double-build or observe a half-built
  // COO. The release store pairs with the acquire load.
  if (!coo_built_.load(std::memory_order_acquire)) {
    MutexLock lk(coo_mutex_);
    if (!coo_built_.load(std::memory_order_relaxed)) {
      coo_ = build_partitioned_coo(*graph_, part_, opts_.edge_order);
      coo_built_.store(true, std::memory_order_release);
    }
  }
  return coo_;
}

}  // namespace vebo
