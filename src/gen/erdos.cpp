#include "gen/erdos.hpp"

#include "support/error.hpp"
#include "support/prng.hpp"

namespace vebo::gen {

Graph erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed, bool directed) {
  VEBO_CHECK(n > 1, "erdos_renyi: need at least 2 vertices");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    VertexId u = static_cast<VertexId>(rng.next_below(n));
    VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) v = (v + 1) % n;
    edges.push_back({u, v});
  }
  EdgeList el(n, std::move(edges), directed);
  if (!directed) el.symmetrize();
  return Graph::from_edges(std::move(el));
}

}  // namespace vebo::gen
