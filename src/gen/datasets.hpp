// Scaled-down deterministic stand-ins for the paper's 8 evaluation graphs
// (Table I). Each stand-in matches the original's qualitative profile:
// directedness, skew (power-law vs near-uniform), and the presence of
// zero-in-degree vertices. A single `scale` knob multiplies sizes so tests
// use tiny graphs and benches use larger ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace vebo::gen {

struct DatasetSpec {
  std::string name;        ///< e.g. "twitter"
  std::string paper_name;  ///< e.g. "Twitter (41.7M/1.47B)"
  bool directed = true;
  bool powerlaw = true;
};

/// Names: twitter, friendster, orkut, livejournal, yahoo, usaroad,
/// powerlaw, rmat27.
const std::vector<DatasetSpec>& dataset_specs();

/// Builds the named stand-in. `scale` in [0.1, 8] multiplies the base
/// vertex count (base ~ 32k-64k vertices). Throws on unknown name.
Graph make_dataset(const std::string& name, double scale = 1.0,
                   std::uint64_t seed = 42);

}  // namespace vebo::gen
