// Power-law graph generators matching the paper's degree-distribution
// model (Section III-A): in-degrees follow a Zipf distribution with
// exponent s over N ranks. Two generators:
//  * zipf_directed: draws an explicit Zipf in-degree sequence and attaches
//    uniformly random sources — the literal model of Theorems 1 and 2.
//  * chung_lu: undirected expected-degree model (the "Powerlaw (alpha=2)"
//    dataset of Table I).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace vebo::gen {

struct ZipfOptions {
  double s = 1.0;        ///< Zipf exponent (paper: alpha = 1 + 1/s)
  std::size_t ranks = 0; ///< N; 0 = derive as n/4
  /// Correlation between vertex id and degree, mimicking crawl order in
  /// real social graphs (early-crawled users are hubs). 0 = degrees are
  /// i.i.d. across ids; 1 = ids sorted by decreasing degree. Implemented
  /// as a windowed shuffle of the sorted degree sequence with window
  /// (1 - hub_locality) * n.
  double hub_locality = 0.0;
};

/// Samples n in-degrees from the Zipf pmf p_k = k^-s / H_{N,s}, where a
/// vertex sampled at rank k has in-degree k-1 (so degree 0 is the most
/// frequent, matching the paper).
std::vector<EdgeId> zipf_degree_sequence(VertexId n, std::uint64_t seed,
                                         const ZipfOptions& opts = {});

/// Directed graph whose in-degree sequence is exactly the given one;
/// the source of every edge is uniform random (multi-edges allowed,
/// self-loops removed).
Graph graph_from_in_degrees(const std::vector<EdgeId>& in_degree,
                            std::uint64_t seed);

/// Convenience: Zipf directed graph.
Graph zipf_directed(VertexId n, std::uint64_t seed,
                    const ZipfOptions& opts = {});

/// Chung–Lu undirected power-law graph with exponent alpha and expected
/// average degree approx `avg_degree`.
Graph chung_lu(VertexId n, double alpha, double avg_degree,
               std::uint64_t seed);

}  // namespace vebo::gen
