#include "gen/road.hpp"

#include "support/error.hpp"
#include "support/prng.hpp"

namespace vebo::gen {

Graph road_grid(VertexId rows, VertexId cols, std::uint64_t seed,
                const RoadOptions& opts) {
  VEBO_CHECK(rows >= 2 && cols >= 2, "road_grid: need at least a 2x2 grid");
  const VertexId n = rows * cols;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = id(r, c);
      if (c + 1 < cols && rng.next_double() >= opts.delete_prob)
        edges.push_back({v, id(r, c + 1)});
      if (r + 1 < rows && rng.next_double() >= opts.delete_prob)
        edges.push_back({v, id(r + 1, c)});
      if (r + 1 < rows && c + 1 < cols &&
          rng.next_double() < opts.diagonal_prob)
        edges.push_back({v, id(r + 1, c + 1)});
    }
  }
  EdgeList el(n, std::move(edges), /*directed=*/false);
  el.symmetrize();
  return Graph::from_edges(std::move(el));
}

}  // namespace vebo::gen
