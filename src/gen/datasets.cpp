#include "gen/datasets.hpp"

#include <cmath>

#include "gen/erdos.hpp"
#include "gen/powerlaw.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/synthetic.hpp"
#include "support/error.hpp"

namespace vebo::gen {

const std::vector<DatasetSpec>& dataset_specs() {
  static const std::vector<DatasetSpec> specs = {
      {"twitter", "Twitter (41.7M v, 1.47B e, dir.)", true, true},
      {"friendster", "Friendster (125M v, 1.81B e, dir.)", true, true},
      {"orkut", "Orkut (3.07M v, 234M e, undir.)", false, true},
      {"livejournal", "LiveJournal (4.85M v, 69M e, dir.)", true, true},
      {"yahoo", "Yahoo mem (1.64M v, 30.4M e, undir.)", false, true},
      {"usaroad", "USAroad (23.9M v, 58M e, undir.)", false, false},
      {"powerlaw", "Powerlaw alpha=2 (100M v, 294M e, undir.)", false, true},
      {"rmat27", "RMAT27 (134M v, 1.34B e, dir.)", true, true},
  };
  return specs;
}

Graph make_dataset(const std::string& name, double scale,
                   std::uint64_t seed) {
  VEBO_CHECK(scale >= 0.05 && scale <= 64.0, "dataset scale out of range");
  const auto sv = [&](VertexId base) {
    return static_cast<VertexId>(std::lround(base * scale));
  };
  if (name == "twitter") {
    // Heavy skew with ~14% zero in-degree and a max degree that keeps the
    // paper's ratio max_deg ~ |E|/2000 (the real Twitter satisfies the
    // Theorem 1 precondition |E| >= N(P-1); an RMAT hub at this scale
    // would not). Zipf s=1.0 gives p(deg=0) ~ 13%, matching Table I.
    // ranks = n/32 keeps the paper's average degree (~35) and zero-in
    // fraction (~14%) while satisfying |E| >= N(P-1) at bench scales.
    const VertexId n = sv(32768);
    return zipf_directed(n, seed,
                         {.s = 1.0,
                          .ranks = std::max<std::size_t>(64, n / 32),
                          .hub_locality = 0.9});
  }
  if (name == "friendster") {
    // Moderate max degree (4223 in the paper), ~48% zero in-degree:
    // Zipf with moderate skew and a rank ceiling.
    const VertexId n = sv(65536);
    return zipf_directed(n, seed,
                         {.s = 0.9, .ranks = 512, .hub_locality = 0.5});
  }
  if (name == "orkut") {
    // Undirected social graph, no zero-degree vertices.
    const VertexId n = sv(32768);
    return preferential_attachment(n, 8, seed);
  }
  if (name == "livejournal") {
    // s=1.6 gives the paper's average degree (~15) with a deep tail.
    const VertexId n = sv(49152);
    return zipf_directed(n, seed,
                         {.s = 1.6, .ranks = 1024, .hub_locality = 0.7});
  }
  if (name == "yahoo") {
    const VertexId n = sv(24576);
    return chung_lu(n, 2.3, 18.0, seed);
  }
  if (name == "usaroad") {
    const VertexId side = sv(192);
    return road_grid(side, side, seed);
  }
  if (name == "powerlaw") {
    const VertexId n = sv(65536);
    return chung_lu(n, 2.0, 6.0, seed);
  }
  if (name == "rmat27") {
    int sc = std::max(10, static_cast<int>(std::lround(16 + std::log2(scale))));
    return rmat(sc, 10, seed);
  }
  throw Error("unknown dataset: " + name);
}

}  // namespace vebo::gen
