#include "gen/powerlaw.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/prng.hpp"

namespace vebo::gen {

std::vector<EdgeId> zipf_degree_sequence(VertexId n, std::uint64_t seed,
                                         const ZipfOptions& opts) {
  VEBO_CHECK(n > 0, "zipf: n must be positive");
  VEBO_CHECK(opts.s >= 0.0, "zipf: s must be non-negative");
  const std::size_t N = opts.ranks ? opts.ranks : std::max<std::size_t>(2, n / 4);
  // Build the CDF over ranks 1..N; rank k has probability k^-s / H_{N,s}
  // and maps to in-degree k-1.
  std::vector<double> cdf(N);
  double acc = 0.0;
  for (std::size_t k = 1; k <= N; ++k) {
    acc += std::pow(static_cast<double>(k), -opts.s);
    cdf[k - 1] = acc;
  }
  for (double& c : cdf) c /= acc;

  Xoshiro256 rng(seed);
  std::vector<EdgeId> deg(n);
  for (VertexId v = 0; v < n; ++v) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank = static_cast<std::size_t>(it - cdf.begin()) + 1;
    deg[v] = static_cast<EdgeId>(rank - 1);
  }
  if (opts.hub_locality > 0.0) {
    VEBO_CHECK(opts.hub_locality <= 1.0, "hub_locality must be in [0,1]");
    // Crawl-order model: sort descending, then windowed shuffle so the
    // id-degree trend survives local noise.
    std::sort(deg.rbegin(), deg.rend());
    const std::size_t window = std::max<std::size_t>(
        1, static_cast<std::size_t>((1.0 - opts.hub_locality) * n));
    for (VertexId v = 0; v < n; ++v) {
      const std::size_t lo = v >= window ? v - window : 0;
      const std::size_t j = lo + rng.next_below(v - lo + 1);
      std::swap(deg[v], deg[j]);
    }
  }
  return deg;
}

Graph graph_from_in_degrees(const std::vector<EdgeId>& in_degree,
                            std::uint64_t seed) {
  const VertexId n = static_cast<VertexId>(in_degree.size());
  VEBO_CHECK(n > 1, "graph_from_in_degrees: need at least 2 vertices");
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Edge> edges;
  EdgeId total = 0;
  for (EdgeId d : in_degree) total += d;
  edges.reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeId i = 0; i < in_degree[v]; ++i) {
      VertexId src = static_cast<VertexId>(rng.next_below(n));
      if (src == v) src = (src + 1) % n;  // avoid self-loop, keep degree
      edges.push_back({src, v});
    }
  }
  return Graph::from_edges(EdgeList(n, std::move(edges), /*directed=*/true));
}

Graph zipf_directed(VertexId n, std::uint64_t seed, const ZipfOptions& opts) {
  return graph_from_in_degrees(zipf_degree_sequence(n, seed, opts), seed);
}

Graph chung_lu(VertexId n, double alpha, double avg_degree,
               std::uint64_t seed) {
  VEBO_CHECK(n > 1, "chung_lu: need at least 2 vertices");
  VEBO_CHECK(alpha > 1.0, "chung_lu: alpha must exceed 1");
  // Expected weights w_v ~ v^{-1/(alpha-1)} (standard construction),
  // scaled so the mean weight is avg_degree/... we scale to hit the
  // requested expected average degree.
  std::vector<double> w(n);
  const double exponent = -1.0 / (alpha - 1.0);
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v + 1), exponent);
    sum += w[v];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (double& x : w) x *= scale;
  const double W = avg_degree * static_cast<double>(n);

  // Efficient Chung–Lu sampling (Miller–Hagberg): walk vertex pairs in
  // weight order with geometric skips.
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(W / 2));
  for (VertexId u = 0; u < n; ++u) {
    VertexId v = u + 1;
    double p = std::min(1.0, w[u] * w[u + 1 < n ? u + 1 : u] / W);
    while (v < n && p > 0) {
      if (p < 1.0) {
        const double r = rng.next_double();
        v += static_cast<VertexId>(std::floor(std::log(1.0 - r) /
                                              std::log(1.0 - p)));
      }
      if (v < n) {
        const double q = std::min(1.0, w[u] * w[v] / W);
        if (rng.next_double() < q / p) edges.push_back({u, v});
        p = q;
        ++v;
      }
    }
  }
  EdgeList el(n, std::move(edges), /*directed=*/false);
  el.symmetrize();
  return Graph::from_edges(std::move(el));
}

}  // namespace vebo::gen
