#include "gen/synthetic.hpp"

#include "support/error.hpp"
#include "support/prng.hpp"

namespace vebo::gen {

Graph path(VertexId n, bool directed) {
  VEBO_CHECK(n >= 2, "path: need at least 2 vertices");
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  EdgeList el(n, std::move(edges), directed);
  if (!directed) el.symmetrize();
  return Graph::from_edges(std::move(el));
}

Graph cycle(VertexId n, bool directed) {
  VEBO_CHECK(n >= 3, "cycle: need at least 3 vertices");
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  EdgeList el(n, std::move(edges), directed);
  if (!directed) el.symmetrize();
  return Graph::from_edges(std::move(el));
}

Graph star(VertexId n, bool directed) {
  VEBO_CHECK(n >= 2, "star: need at least 2 vertices");
  std::vector<Edge> edges;
  for (VertexId v = 1; v < n; ++v) edges.push_back({v, 0});
  EdgeList el(n, std::move(edges), directed);
  if (!directed) el.symmetrize();
  return Graph::from_edges(std::move(el));
}

Graph complete(VertexId n, bool directed) {
  VEBO_CHECK(n >= 2, "complete: need at least 2 vertices");
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v) edges.push_back({u, v});
  EdgeList el(n, std::move(edges), directed);
  return Graph::from_edges(std::move(el));
}

Graph figure3_example() {
  // In-degrees: v0=1, v1=2, v2=2, v3=2, v4=4, v5=3 (total 14 edges).
  std::vector<Edge> edges = {
      {1, 0},                          // deg_in(0) = 1
      {0, 1}, {2, 1},                  // deg_in(1) = 2
      {3, 2}, {4, 2},                  // deg_in(2) = 2
      {4, 3}, {5, 3},                  // deg_in(3) = 2
      {0, 4}, {1, 4}, {3, 4}, {5, 4},  // deg_in(4) = 4
      {0, 5}, {2, 5}, {4, 5},          // deg_in(5) = 3
  };
  return Graph::from_edges(EdgeList(6, std::move(edges), /*directed=*/true));
}

Graph preferential_attachment(VertexId n, VertexId attach,
                              std::uint64_t seed) {
  VEBO_CHECK(attach >= 1, "preferential_attachment: attach >= 1");
  VEBO_CHECK(n > attach, "preferential_attachment: n must exceed attach");
  Xoshiro256 rng(seed);
  // `targets` holds one entry per edge endpoint, so sampling a uniform
  // element samples vertices proportional to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * attach * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * attach);
  // Seed clique over the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u)
    for (VertexId v = u + 1; v <= attach; ++v) {
      edges.push_back({u, v});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  for (VertexId v = attach + 1; v < n; ++v) {
    for (VertexId k = 0; k < attach; ++k) {
      const VertexId target =
          endpoints[rng.next_below(endpoints.size())];
      edges.push_back({v, target});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  EdgeList el(n, std::move(edges), /*directed=*/false);
  el.symmetrize();
  return Graph::from_edges(std::move(el));
}

}  // namespace vebo::gen
