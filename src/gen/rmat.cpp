#include "gen/rmat.hpp"

#include "support/error.hpp"
#include "support/prng.hpp"

namespace vebo::gen {

EdgeList rmat_edges(int scale, EdgeId edge_factor, std::uint64_t seed,
                    const RmatOptions& opts) {
  VEBO_CHECK(scale > 0 && scale < 31, "rmat scale out of range");
  VEBO_CHECK(opts.a + opts.b + opts.c < 1.0 + 1e-9,
             "rmat probabilities must sum to < 1 (d is the remainder)");
  const VertexId n = VertexId{1} << scale;
  const EdgeId m = edge_factor * static_cast<EdgeId>(n);
  Xoshiro256 rng(seed);

  // Optional scramble permutation so vertex id carries no structure.
  std::vector<VertexId> scramble;
  if (opts.scramble) {
    scramble.resize(n);
    for (VertexId v = 0; v < n; ++v) scramble[v] = v;
    for (VertexId v = n - 1; v > 0; --v) {
      const VertexId j = static_cast<VertexId>(rng.next_below(v + 1));
      std::swap(scramble[v], scramble[j]);
    }
  }

  std::vector<Edge> edges;
  edges.reserve(m);
  const double ab = opts.a + opts.b;
  const double abc = opts.a + opts.b + opts.c;
  for (EdgeId e = 0; e < m; ++e) {
    VertexId src = 0, dst = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant selection with per-level noise as in Graph500.
      if (r < opts.a) {
        // top-left: neither bit set
      } else if (r < ab) {
        dst |= VertexId{1} << bit;
      } else if (r < abc) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    if (opts.scramble) {
      src = scramble[src];
      dst = scramble[dst];
    }
    edges.push_back({src, dst});
  }
  EdgeList el(n, std::move(edges), /*directed=*/true);
  if (opts.dedupe) el.remove_duplicates();
  return el;
}

Graph rmat(int scale, EdgeId edge_factor, std::uint64_t seed,
           const RmatOptions& opts) {
  return Graph::from_edges(rmat_edges(scale, edge_factor, seed, opts));
}

}  // namespace vebo::gen
