// Small deterministic fixture graphs for tests and examples, plus a
// preferential-attachment generator (undirected social-network stand-in
// for Orkut/LiveJournal) and the paper's 6-vertex worked example (Fig. 3).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace vebo::gen {

Graph path(VertexId n, bool directed = true);
Graph cycle(VertexId n, bool directed = true);
/// Star with hub 0 and n-1 leaves; edges point leaf -> hub when directed
/// (the hub is the high-in-degree vertex).
Graph star(VertexId n, bool directed = true);
Graph complete(VertexId n, bool directed = true);

/// The 6-vertex example graph from the paper's Figure 3 (in-degrees
/// 1,2,2,2,4,3 for vertices 0..5).
Graph figure3_example();

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportional to degree. Undirected,
/// power-law-ish with minimum degree `attach`.
Graph preferential_attachment(VertexId n, VertexId attach,
                              std::uint64_t seed);

}  // namespace vebo::gen
