// R-MAT recursive-matrix graph generator (Chakrabarti et al.), the
// generator behind the paper's RMAT27 dataset. Produces heavily skewed,
// power-law-like directed graphs with many zero-degree vertices.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace vebo::gen {

struct RmatOptions {
  double a = 0.57;  ///< Graph500 defaults
  double b = 0.19;
  double c = 0.19;  ///< d = 1 - a - b - c
  bool scramble = true;   ///< randomize vertex ids to kill generation order
  bool dedupe = false;    ///< drop duplicate edges
};

/// Generates ~(edge_factor * 2^scale) directed edges over 2^scale vertices.
EdgeList rmat_edges(int scale, EdgeId edge_factor, std::uint64_t seed,
                    const RmatOptions& opts = {});

Graph rmat(int scale, EdgeId edge_factor, std::uint64_t seed,
           const RmatOptions& opts = {});

}  // namespace vebo::gen
