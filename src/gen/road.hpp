// Road-network stand-in for the paper's USAroad graph: a 2D grid with
// occasional diagonal shortcuts and random deletions. Degrees are nearly
// uniform (max <= 8), diameter is large, and vertex ids follow a
// row-major sweep so the original ordering has strong spatial locality —
// exactly the structure VEBO is shown to break in Section V-B.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace vebo::gen {

struct RoadOptions {
  double diagonal_prob = 0.05;  ///< chance of a diagonal shortcut per cell
  double delete_prob = 0.03;    ///< chance of removing a grid edge
};

/// Undirected rows x cols grid road network.
Graph road_grid(VertexId rows, VertexId cols, std::uint64_t seed,
                const RoadOptions& opts = {});

}  // namespace vebo::gen
