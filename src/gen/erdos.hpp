// Erdős–Rényi G(n, m) generator: the non-skewed control case used in
// tests (VEBO's theorems assume power-law degrees; ER shows behaviour on
// near-binomial degrees).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace vebo::gen {

/// Directed G(n, m): m edges sampled uniformly with replacement,
/// self-loops excluded.
Graph erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed,
                  bool directed = true);

}  // namespace vebo::gen
